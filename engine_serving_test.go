package slicenstitch

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func TestEngineObservedWithinValidation(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	if err := e.AddStream("s", validStreamConfig()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.ObservedWithin("nope", []int{0, 0}, 0, time.Second); !errors.Is(err, ErrUnknownStream) {
		t.Fatalf("unknown stream err = %v", err)
	}
	if _, _, err := e.ObservedWithin("s", []int{99, 0}, 0, time.Second); err == nil {
		t.Fatal("bad coord accepted")
	}
	// Idle stream: the bounded read answers like Observed.
	if err := e.Push("s", []int{2, 3}, 7, 0); err != nil {
		t.Fatal(err)
	}
	v, ok, err := e.ObservedWithin("s", []int{2, 3}, 2, 5*time.Second)
	if err != nil || !ok {
		t.Fatalf("ObservedWithin = (%v, %v, %v)", v, ok, err)
	}
	if v != 7 {
		t.Fatalf("observed %v want 7", v)
	}
	// timeout ≤ 0 falls back to the unbounded path.
	v, ok, err = e.ObservedWithin("s", []int{2, 3}, 2, 0)
	if err != nil || !ok || v != 7 {
		t.Fatalf("blocking fallback = (%v, %v, %v)", v, ok, err)
	}
}

// The predict-serving bugfix: a bounded observed read must return promptly
// even when the shard writer is buried under queued batches, instead of
// hanging behind the mailbox until the backlog drains.
func TestEngineObservedWithinBoundedUnderBacklog(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	cfg := validStreamConfig()
	cfg.MailboxCapacity = 2
	if err := e.AddStream("s", cfg); err != nil {
		t.Fatal(err)
	}
	tm := fillAndStart(t, e, "s", 11)

	// Jam the writer: sequential started batches that advance time, so
	// every arrival drags its shift/expiry cascade with it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < 6; b++ {
			batch := make([]Event, 2000)
			for k := range batch {
				if k%4 == 0 {
					tm++
				}
				batch[k] = Event{Coord: []int{k % 5, k % 4}, Value: 1, Time: tm}
			}
			if err := e.PushBatch("s", batch); err != nil {
				return
			}
		}
	}()

	// Wait for the mailbox to actually fill so the read contends with a
	// real backlog.
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if mustSnap(t, e, "s").QueueDepth >= cfg.MailboxCapacity {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}

	start := time.Now()
	_, ok, err := e.ObservedWithin("s", []int{0, 0}, 0, 30*time.Millisecond)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("bounded read took %v", elapsed)
	}
	t.Logf("ObservedWithin under backlog: ok=%v in %v", ok, elapsed)
	wg.Wait()
	// Once the backlog drains, the blocking variant still works.
	if _, err := e.Observed("s", []int{0, 0}, 0); err != nil {
		t.Fatal(err)
	}
}

// DropOldest accounting: with equal-size all-valid batches, the events the
// stats report as ingested plus the events inside dropped batches must
// equal everything pushed — eviction loses whole batches, never partial
// ones, and rejected-event counters stay untouched.
func TestEngineDropOldestAccounting(t *testing.T) {
	const (
		batchSize = 512
		nBatches  = 200
	)
	e := NewEngine()
	defer e.Close()
	cfg := validStreamConfig()
	cfg.MailboxCapacity = 1
	cfg.Backpressure = BackpressureDropOldest
	if err := e.AddStream("s", cfg); err != nil {
		t.Fatal(err)
	}
	// All events at time 0: always valid, cheap to apply, order-free.
	batch := make([]Event, batchSize)
	for k := range batch {
		batch[k] = Event{Coord: []int{k % 5, k % 4}, Value: 1, Time: 0}
	}
	for b := 0; b < nBatches; b++ {
		if err := e.PushBatch("s", batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush("s"); err != nil {
		t.Fatal(err)
	}
	snap := mustSnap(t, e, "s")
	if snap.IngestErrors != 0 {
		t.Fatalf("IngestErrors = %d, want 0", snap.IngestErrors)
	}
	if snap.Ingested+snap.Dropped*batchSize != nBatches*batchSize {
		t.Fatalf("accounting broken: ingested %d + dropped %d × %d != %d pushed",
			snap.Ingested, snap.Dropped, batchSize, nBatches*batchSize)
	}
	// A capacity-1 mailbox fed 200 batches from a tight loop must have
	// evicted something, or the test exercised nothing.
	if snap.Dropped == 0 {
		t.Fatal("no batches dropped; eviction path not exercised")
	}
	t.Logf("dropped %d/%d batches, ingested %d events", snap.Dropped, nBatches, snap.Ingested)
}

// Engine.Checkpoint must be safe to run concurrently with batched
// ingestion and stream add/remove churn (run under -race in CI). Errors
// from checkpointing a stream that vanished mid-iteration are expected;
// data races and deadlocks are not.
func TestEngineCheckpointConcurrentWithIngestAndRemove(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	if err := e.AddStream("steady", validStreamConfig()); err != nil {
		t.Fatal(err)
	}
	if err := e.AddStream("churn", validStreamConfig()); err != nil {
		t.Fatal(err)
	}
	fillAndStart(t, e, "steady", 5)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // continuous batched ingestion
		defer wg.Done()
		tm := int64(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]Event, 32)
			for k := range batch {
				tm++
				batch[k] = Event{Coord: []int{k % 5, k % 4}, Value: 1, Time: tm}
			}
			if err := e.PushBatch("steady", batch); err != nil {
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // stream churn
		defer wg.Done()
		for i := 0; i < 25; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.RemoveStream("churn")
			_ = e.AddStream("churn", validStreamConfig())
		}
	}()

	for i := 0; i < 15; i++ {
		_ = e.Checkpoint(io.Discard) // unknown-stream errors are fine
	}
	close(stop)
	wg.Wait()

	// With the churn settled, a final checkpoint must round-trip.
	var buf bytes.Buffer
	if err := e.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := len(restored.Streams()); got != 2 {
		t.Fatalf("restored %d streams want 2", got)
	}
}
