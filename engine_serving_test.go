package slicenstitch

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func TestEngineObservedValidation(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	if _, err := e.AddStream("s", validStreamConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Observed(bg, "nope", []int{0, 0}, 0); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("unknown stream err = %v", err)
	}
	var coordErr *CoordError
	if _, err := e.Observed(bg, "s", []int{99, 0}, 0); !errors.As(err, &coordErr) {
		t.Fatalf("bad coord err = %v, want *CoordError", err)
	}
	// Idle stream: the read answers after the queued push.
	if err := e.Push(bg, "s", []int{2, 3}, 7, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 5*time.Second)
	defer cancel()
	v, err := e.Observed(ctx, "s", []int{2, 3}, 2)
	if err != nil {
		t.Fatalf("Observed = (%v, %v)", v, err)
	}
	if v != 7 {
		t.Fatalf("observed %v want 7", v)
	}
}

// The predict-serving guarantee: an Observed read bounded by a context
// deadline must return promptly even when the shard writer is buried
// under queued batches, instead of hanging behind the mailbox until the
// backlog drains.
func TestEngineObservedBoundedUnderBacklog(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	cfg := validStreamConfig()
	cfg.MailboxCapacity = 2
	st, err := e.AddStream("s", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm := fillAndStart(t, e, "s", 11)

	// Jam the writer: sequential started batches that advance time, so
	// every arrival drags its shift/expiry cascade with it.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < 6; b++ {
			batch := make([]Event, 2000)
			for k := range batch {
				if k%4 == 0 {
					tm++
				}
				batch[k] = Event{Coord: []int{k % 5, k % 4}, Value: 1, Time: tm}
			}
			if err := st.PushBatch(bg, batch); err != nil {
				return
			}
		}
	}()

	// Wait for the mailbox to actually fill so the read contends with a
	// real backlog.
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if mustSnap(t, e, "s").QueueDepth >= cfg.MailboxCapacity {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}

	start := time.Now()
	ctx, cancel := context.WithTimeout(bg, 30*time.Millisecond)
	_, err = st.Observed(ctx, []int{0, 0}, 0)
	cancel()
	elapsed := time.Since(start)
	// Either outcome is valid: the query was shed on arrival (full
	// mailbox → ErrObservedUnavailable), it queued but the deadline fired
	// first, or the writer happened to answer in time. What may not
	// happen is a stall behind the backlog.
	if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrObservedUnavailable) {
		t.Fatal(err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("bounded read took %v", elapsed)
	}
	t.Logf("Observed under backlog: err=%v in %v", err, elapsed)
	wg.Wait()
	// Once the backlog drains, the unbounded variant still works.
	if _, err := st.Observed(bg, []int{0, 0}, 0); err != nil {
		t.Fatal(err)
	}
}

// A deadline-bounded Observed read must never take the mailbox slots
// producers need: with a capacity-1 mailbox there is no spare slot to
// leave, so the bounded read is always shed with ErrObservedUnavailable —
// immediately, regardless of backlog. The unbounded form still works.
func TestEngineObservedShedsWhenNoSpareSlot(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	cfg := validStreamConfig()
	cfg.MailboxCapacity = 1
	st, err := e.AddStream("s", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Push(bg, []int{2, 3}, 7, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, time.Second)
	defer cancel()
	start := time.Now()
	_, err = st.Observed(ctx, []int{2, 3}, 2)
	if !errors.Is(err, ErrObservedUnavailable) {
		t.Fatalf("bounded read on capacity-1 mailbox = %v, want ErrObservedUnavailable", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("shed read waited instead of failing fast")
	}
	// The deadline-free form queues as a control message and answers.
	if v, err := st.Observed(bg, []int{2, 3}, 2); err != nil || v != 7 {
		t.Fatalf("unbounded Observed = (%v, %v), want 7", v, err)
	}
}

// Context cancellation must unblock every blocking client call: a
// PushBatch blocked on a full mailbox under BackpressureBlock, and a
// control op (Flush) waiting behind a jammed writer.
func TestEngineContextCancellationUnblocks(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	cfg := validStreamConfig()
	cfg.MailboxCapacity = 1
	st, err := e.AddStream("s", cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm := fillAndStart(t, e, "s", 13)
	stallWriter(t, e, "s", tm) // writer busy for a while
	// Fill the single mailbox slot so the next put must block.
	for deadline := time.Now().Add(2 * time.Second); ; {
		if err := func() error {
			ctx, cancel := context.WithTimeout(bg, time.Millisecond)
			defer cancel()
			return st.PushBatch(ctx, []Event{{Coord: []int{0, 0}, Value: 1, Time: tm}})
		}(); err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("blocked PushBatch err = %v, want DeadlineExceeded", err)
			}
			break // the mailbox is full and the put blocked: cancellation worked
		}
		if !time.Now().Before(deadline) {
			t.Skip("writer drained too fast to observe a blocked put")
		}
	}

	// A control op queued behind the backlog must also honor its context
	// while waiting for the writer's answer.
	start := time.Now()
	ctx, cancel := context.WithTimeout(bg, 5*time.Millisecond)
	err = st.Flush(ctx)
	cancel()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Flush err = %v", err)
	}
	if err == nil {
		t.Log("writer caught up before the deadline; flush completed")
	} else if time.Since(start) > 2*time.Second {
		t.Fatalf("cancelled Flush took %v", time.Since(start))
	}

	// An already-cancelled context fails fast on every path.
	done, cancelNow := context.WithCancel(bg)
	cancelNow()
	if err := st.PushBatch(done, []Event{{Coord: []int{0, 0}, Value: 1, Time: tm}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled PushBatch err = %v, want Canceled", err)
	}
	if err := st.Flush(done); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Flush err = %v", err)
	}
	// The engine is still healthy afterwards.
	if err := e.Flush(bg, "s"); err != nil {
		t.Fatal(err)
	}
}

// DropOldest accounting: with equal-size all-valid batches, the events the
// stats report as ingested plus the events inside dropped batches must
// equal everything pushed — eviction loses whole batches, never partial
// ones, and rejected-event counters stay untouched.
func TestEngineDropOldestAccounting(t *testing.T) {
	const (
		batchSize = 512
		nBatches  = 200
	)
	e := NewEngine()
	defer e.Close()
	cfg := validStreamConfig()
	cfg.MailboxCapacity = 1
	cfg.Backpressure = BackpressureDropOldest
	st, err := e.AddStream("s", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All events at time 0: always valid, cheap to apply, order-free.
	batch := make([]Event, batchSize)
	for k := range batch {
		batch[k] = Event{Coord: []int{k % 5, k % 4}, Value: 1, Time: 0}
	}
	for b := 0; b < nBatches; b++ {
		if err := st.PushBatch(bg, batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(bg); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.IngestErrors != 0 {
		t.Fatalf("IngestErrors = %d, want 0", snap.IngestErrors)
	}
	if snap.Ingested+snap.Dropped*batchSize != nBatches*batchSize {
		t.Fatalf("accounting broken: ingested %d + dropped %d × %d != %d pushed",
			snap.Ingested, snap.Dropped, batchSize, nBatches*batchSize)
	}
	// A capacity-1 mailbox fed 200 batches from a tight loop must have
	// evicted something, or the test exercised nothing.
	if snap.Dropped == 0 {
		t.Fatal("no batches dropped; eviction path not exercised")
	}
	t.Logf("dropped %d/%d batches, ingested %d events", snap.Dropped, nBatches, snap.Ingested)
}

// Engine.Checkpoint must be safe to run concurrently with batched
// ingestion and stream add/remove churn (run under -race in CI). Errors
// from checkpointing a stream that vanished mid-iteration are expected;
// data races and deadlocks are not.
func TestEngineCheckpointConcurrentWithIngestAndRemove(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	if _, err := e.AddStream("steady", validStreamConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddStream("churn", validStreamConfig()); err != nil {
		t.Fatal(err)
	}
	fillAndStart(t, e, "steady", 5)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // continuous batched ingestion
		defer wg.Done()
		tm := int64(1000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := make([]Event, 32)
			for k := range batch {
				tm++
				batch[k] = Event{Coord: []int{k % 5, k % 4}, Value: 1, Time: tm}
			}
			if err := e.PushBatch(bg, "steady", batch); err != nil {
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // stream churn
		defer wg.Done()
		for i := 0; i < 25; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = e.RemoveStream("churn")
			_, _ = e.AddStream("churn", validStreamConfig())
		}
	}()

	for i := 0; i < 15; i++ {
		_ = e.Checkpoint(bg, io.Discard) // unknown-stream errors are fine
	}
	close(stop)
	wg.Wait()

	// With the churn settled, a final checkpoint must round-trip.
	var buf bytes.Buffer
	if err := e.Checkpoint(bg, &buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := len(restored.Streams()); got != 2 {
		t.Fatalf("restored %d streams want 2", got)
	}
}
