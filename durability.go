package slicenstitch

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slicenstitch/internal/metrics"
	"slicenstitch/internal/wal"
)

// FsyncPolicy selects when the write-ahead log pushes committed records
// to stable storage. See wal.SyncPolicy for the exact semantics; the
// trade-off is the classic one — FsyncAlways survives power loss at the
// cost of an fsync per ingest burst, FsyncInterval bounds loss to the
// sync interval, FsyncNever leaves it to the OS.
type FsyncPolicy int

const (
	// FsyncInterval (default) fsyncs at most once per FsyncEvery.
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways fsyncs on every group commit.
	FsyncAlways
	// FsyncNever never fsyncs explicitly.
	FsyncNever
)

// String names the policy ("interval", "always", "never").
func (p FsyncPolicy) String() string { return p.walPolicy().String() }

func (p FsyncPolicy) walPolicy() wal.SyncPolicy {
	switch p {
	case FsyncAlways:
		return wal.SyncAlways
	case FsyncNever:
		return wal.SyncNever
	}
	return wal.SyncInterval
}

// ParseFsyncPolicy converts a flag string ("always", "interval", "never")
// to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("%w: unknown fsync policy %q (want always, interval, or never)", ErrConfig, s)
}

// DurabilityOptions configures the engine's write-ahead log and
// background checkpointing. Every stream gets its own directory under
// Dir with a segmented WAL and checkpoint files; see DESIGN.md
// "Durability" for the on-disk layout and recovery protocol.
type DurabilityOptions struct {
	// Dir is the engine's data directory (required).
	Dir string
	// Fsync selects the group-commit sync policy (default FsyncInterval).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (default 100ms).
	FsyncEvery time.Duration
	// SegmentBytes sizes WAL segments (default 8 MiB); truncation after a
	// checkpoint reclaims whole segments.
	SegmentBytes int64
	// CheckpointEvery is how many applied events may elapse between
	// background checkpoints of a shard (default 65536). Smaller values
	// bound recovery replay time; larger ones amortize the O(state)
	// serialization further.
	CheckpointEvery int
	// KeepCheckpoints is how many checkpoint files to retain per stream
	// (default 2: the newest plus one fallback against a torn newest).
	KeepCheckpoints int
}

func (o DurabilityOptions) withDefaults() DurabilityOptions {
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 1 << 16
	}
	if o.KeepCheckpoints <= 0 {
		o.KeepCheckpoints = 2
	}
	return o
}

func (o DurabilityOptions) validate() error {
	if o.Dir == "" {
		return fmt.Errorf("%w: DurabilityOptions.Dir is required", ErrConfig)
	}
	switch o.Fsync {
	case FsyncInterval, FsyncAlways, FsyncNever:
	default:
		return fmt.Errorf("%w: unknown fsync policy %d", ErrConfig, o.Fsync)
	}
	return nil
}

func (o DurabilityOptions) walOptions() wal.Options {
	return wal.Options{
		SegmentBytes: o.SegmentBytes,
		Sync:         o.Fsync.walPolicy(),
		SyncEvery:    o.FsyncEvery,
	}
}

// Options configures an Engine built with Open.
type Options struct {
	// Durability enables the write-ahead log and crash recovery; nil runs
	// the engine purely in memory (the NewEngine behaviour).
	Durability *DurabilityOptions
	// Follower turns the engine into a read replica of the given leader:
	// it bootstraps every leader stream from the newest checkpoint, tails
	// the leader's WAL, and serves reads while rejecting writes with
	// ErrReadOnly. Requires Durability — the replica persists its copy
	// locally, so a restart recovers and resumes tailing instead of
	// re-bootstrapping.
	Follower *FollowerOptions
}

// Open builds an engine from Options. With durability configured it
// recovers every stream found in the data directory — latest valid
// checkpoint plus WAL tail replay, tolerating a torn final record — so a
// restarted process resumes exactly where the crashed one's durable
// state ends. Streams added later via AddStream are persisted under the
// same directory.
func Open(opts Options) (*Engine, error) {
	e := NewEngine()
	if opts.Follower != nil {
		if opts.Durability == nil {
			return nil, fmt.Errorf("%w: FollowerOptions requires DurabilityOptions (the replica persists its copy locally)", ErrConfig)
		}
		f, err := newFollowerState(e, *opts.Follower)
		if err != nil {
			return nil, err
		}
		e.follower = f
	}
	if opts.Durability == nil {
		return e, nil
	}
	d := opts.Durability.withDefaults()
	if err := d.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(streamsRoot(d.Dir), 0o755); err != nil {
		return nil, fmt.Errorf("slicenstitch: open data dir: %w", err)
	}
	e.dur = &durEngine{opts: d}
	start := time.Now()
	if err := e.recoverStreams(); err != nil {
		e.Close()
		return nil, err
	}
	e.dur.recoveryNanos = time.Since(start).Nanoseconds()
	if e.follower != nil {
		e.follower.start()
	}
	return e, nil
}

// OpenDurable opens (or creates) a durable engine rooted at dir with
// default durability options — the one-line recovery entry point.
func OpenDurable(dir string) (*Engine, error) {
	return Open(Options{Durability: &DurabilityOptions{Dir: dir}})
}

// durEngine is the engine-level durability state.
type durEngine struct {
	opts DurabilityOptions
	// recoveryNanos is how long Open spent recovering every stream from
	// the data directory — 0 for a fresh directory. Written once at Open,
	// read by Engine.Metrics.
	recoveryNanos int64
	// mu serializes stream-directory create/remove against each other;
	// without it two racing AddStream("x") calls could both open
	// appenders over the same WAL files before the registry rejects the
	// duplicate.
	mu sync.Mutex
}

// streamsRoot is the directory holding one subdirectory per stream.
func streamsRoot(dir string) string { return filepath.Join(dir, "streams") }

// encodeStreamDir makes a stream name filesystem-safe: bytes outside
// [A-Za-z0-9._-] are %XX-escaped ('%' itself included), which is
// injective, so distinct stream names always get distinct directories.
// The authoritative name lives in the config file; the directory name
// only needs uniqueness.
func encodeStreamDir(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// streamConfigDTO is the wire form of a stream's durable configuration.
type streamConfigDTO struct {
	FormatVersion   int
	Name            string
	Config          Config
	MailboxCapacity int
	Backpressure    int
	PublishEvery    int
}

const streamConfigVersion = 1

// durCRC is the checksum table shared by the framed config and
// checkpoint files (same polynomial as the WAL's record frames).
var durCRC = crc32.MakeTable(crc32.Castagnoli)

// frameFile atomically writes a CRC-framed blob: tmp file, fsync, rename,
// directory fsync. A reader sees either nothing, the old content, or the
// complete new content.
func frameFile(path string, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, durCRC))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(hdr[:])
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if dir, derr := os.Open(filepath.Dir(path)); derr == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// readFrameFile reads and CRC-validates a file written by frameFile.
func readFrameFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: %s: truncated header", ErrCorruptCheckpoint, path)
	}
	n := binary.LittleEndian.Uint32(data[0:])
	crc := binary.LittleEndian.Uint32(data[4:])
	if uint64(len(data)) != 8+uint64(n) {
		return nil, fmt.Errorf("%w: %s: %d payload bytes, header claims %d", ErrCorruptCheckpoint, path, len(data)-8, n)
	}
	payload := data[8:]
	if crc32.Checksum(payload, durCRC) != crc {
		return nil, fmt.Errorf("%w: %s: checksum mismatch", ErrCorruptCheckpoint, path)
	}
	return payload, nil
}

// shardDur is one shard's durability attachment, owned by its writer
// goroutine (wal, buf) and its background checkpointer (ckptC consumer).
type shardDur struct {
	dir  string // the stream's directory
	wal  *wal.Log
	opts DurabilityOptions
	buf  []byte // record-encode scratch, writer-owned

	// walStats receives the log's counters (the same instance the wal.Log
	// records into); ckptStats the background checkpointer's. recoverNanos
	// is how long this stream's recovery (checkpoint restore + WAL replay)
	// took at Open, 0 for a stream created fresh.
	walStats     *metrics.WALStats
	ckptStats    *metrics.CheckpointStats
	recoverNanos int64

	// applied mirrors the WAL position just past the last record the
	// writer has applied (stored by noteApplied on the writer goroutine,
	// loaded wait-free by Snapshot and the replication protocol).
	applied atomic.Uint64

	ckptC    chan ckptReq
	ckptDone chan struct{}
	ckptErr  atomicErr
	// crashed simulates a hard kill: set before closing the mailbox, it
	// makes the shard abandon the WAL buffer and suppress the pending
	// checkpoint instead of flushing on the way down. Test-only.
	crashed atomic.Bool
}

// ckptReq hands a captured checkpoint to the background checkpointer.
type ckptReq struct {
	lsn  uint64
	data []byte
}

// atomicErr is a tiny error mailbox readable from any goroutine.
type atomicErr struct {
	mu  sync.Mutex
	err error
}

func (a *atomicErr) set(err error) {
	a.mu.Lock()
	a.err = err
	a.mu.Unlock()
}

func (a *atomicErr) get() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// createStream materializes a new stream's directory (config file + empty
// WAL) and returns the shard attachment. Caller holds durEngine.mu and
// has verified no live stream owns the name — so anything already at the
// path is debris (a half-created or half-removed stream the process died
// inside of; recovery skipped it for lacking a readable config) and must
// be wiped, or the new stream would inherit a dead stream's WAL segments
// and checkpoints.
func (d *durEngine) createStream(name string, cfg StreamConfig) (*shardDur, error) {
	dir := filepath.Join(streamsRoot(d.opts.Dir), encodeStreamDir(name))
	if err := os.RemoveAll(dir); err != nil {
		return nil, fmt.Errorf("slicenstitch: clear stale stream dir: %w", err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("slicenstitch: create stream dir: %w", err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(streamConfigDTO{
		FormatVersion:   streamConfigVersion,
		Name:            name,
		Config:          cfg.Config,
		MailboxCapacity: cfg.MailboxCapacity,
		Backpressure:    int(cfg.Backpressure),
		PublishEvery:    cfg.PublishEvery,
	}); err != nil {
		return nil, fmt.Errorf("slicenstitch: encode stream config: %w", err)
	}
	if err := frameFile(filepath.Join(dir, "config"), buf.Bytes()); err != nil {
		return nil, fmt.Errorf("slicenstitch: write stream config: %w", err)
	}
	ws := &metrics.WALStats{}
	wopts := d.opts.walOptions()
	wopts.Stats = ws
	l, err := wal.Open(filepath.Join(dir, "wal"), wopts)
	if err != nil {
		return nil, err
	}
	return d.newShardDur(dir, l, ws), nil
}

func (d *durEngine) newShardDur(dir string, l *wal.Log, ws *metrics.WALStats) *shardDur {
	return &shardDur{
		dir:       dir,
		wal:       l,
		opts:      d.opts,
		walStats:  ws,
		ckptStats: &metrics.CheckpointStats{},
		ckptC:     make(chan ckptReq, 1),
		ckptDone:  make(chan struct{}),
	}
}

// removeStream deletes a stream's directory. Caller holds durEngine.mu
// and has already stopped the shard.
func (d *durEngine) removeStream(name string) error {
	return os.RemoveAll(filepath.Join(streamsRoot(d.opts.Dir), encodeStreamDir(name)))
}

// run is the background checkpointer: it persists captured checkpoints
// and reclaims WAL segments below them. One per durable shard; exits when
// the writer closes ckptC.
func (sd *shardDur) run() {
	defer close(sd.ckptDone)
	for req := range sd.ckptC {
		if sd.crashed.Load() {
			continue
		}
		start := time.Now()
		floor, err := sd.persistCheckpoint(req)
		if err != nil {
			sd.ckptStats.RecordFailure()
			sd.ckptErr.set(err)
			continue
		}
		sd.ckptStats.RecordCheckpoint(len(req.data), time.Since(start))
		sd.ckptErr.set(nil)
		// Reclaim up to the OLDEST retained checkpoint, not the newest:
		// the retained fallback checkpoint is only a usable fallback while
		// the WAL still covers its LSN.
		if err := sd.wal.TruncateBefore(floor); err != nil {
			sd.ckptErr.set(err)
		}
	}
}

const ckptPrefix = "ckpt-"

func ckptPath(dir string, lsn uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x", ckptPrefix, lsn))
}

// persistCheckpoint atomically writes one checkpoint file, prunes old
// ones beyond the retention count, and returns the oldest retained LSN —
// the WAL truncation floor.
func (sd *shardDur) persistCheckpoint(req ckptReq) (uint64, error) {
	if err := frameFile(ckptPath(sd.dir, req.lsn), req.data); err != nil {
		return 0, fmt.Errorf("slicenstitch: write checkpoint: %w", err)
	}
	lsns, err := listCheckpoints(sd.dir)
	if err != nil {
		return 0, err
	}
	floor := req.lsn
	for i, lsn := range lsns { // newest first
		if i >= sd.opts.KeepCheckpoints {
			os.Remove(ckptPath(sd.dir, lsn))
		} else if lsn < floor {
			floor = lsn
		}
	}
	return floor, nil
}

// listCheckpoints returns the checkpoint LSNs in dir, newest first.
func listCheckpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("slicenstitch: %w", err)
	}
	var lsns []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ckptPrefix) || strings.HasSuffix(name, ".tmp") {
			continue
		}
		v, perr := strconv.ParseUint(strings.TrimPrefix(name, ckptPrefix), 16, 64)
		if perr != nil {
			continue
		}
		lsns = append(lsns, v)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	return lsns, nil
}

// WAL record types.
const (
	recBatch   byte = 1
	recStart   byte = 2
	recAdvance byte = 3
)

// appendZigzag appends an int64 as a zigzag varint.
func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

func readZigzag(src []byte) (int64, int) {
	u, n := binary.Uvarint(src)
	return int64(u>>1) ^ -int64(u&1), n
}

// encodeBatchRecord serializes a raw ingest batch — including events that
// validation will reject, so replay reproduces the original application
// byte for byte — into dst[:0] and returns it. The encoding is a compact
// varint form, allocation-free once dst has warmed to batch size.
func encodeBatchRecord(dst []byte, events []Event) []byte {
	dst = append(dst[:0], recBatch)
	dst = binary.AppendUvarint(dst, uint64(len(events)))
	for i := range events {
		ev := &events[i]
		dst = binary.AppendUvarint(dst, uint64(len(ev.Coord)))
		for _, c := range ev.Coord {
			dst = appendZigzag(dst, int64(c))
		}
		var vb [8]byte
		binary.LittleEndian.PutUint64(vb[:], math.Float64bits(ev.Value))
		dst = append(dst, vb[:]...)
		dst = appendZigzag(dst, ev.Time)
	}
	return dst
}

// decodeBatchRecord parses a recBatch payload (sans the leading type
// byte) back into events. Replay-path only, so it allocates freely.
func decodeBatchRecord(src []byte) ([]Event, error) {
	count, n := binary.Uvarint(src)
	if n <= 0 {
		return nil, fmt.Errorf("%w: batch record: bad count", ErrCorruptWAL)
	}
	src = src[n:]
	if count > uint64(wal.MaxRecordBytes) {
		return nil, fmt.Errorf("%w: batch record: absurd count %d", ErrCorruptWAL, count)
	}
	events := make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		arity, n := binary.Uvarint(src)
		if n <= 0 || arity > 1024 {
			return nil, fmt.Errorf("%w: batch record: bad arity", ErrCorruptWAL)
		}
		src = src[n:]
		coord := make([]int, arity)
		for m := range coord {
			v, n := readZigzag(src)
			if n <= 0 {
				return nil, fmt.Errorf("%w: batch record: bad coord", ErrCorruptWAL)
			}
			coord[m] = int(v)
			src = src[n:]
		}
		if len(src) < 8 {
			return nil, fmt.Errorf("%w: batch record: bad value", ErrCorruptWAL)
		}
		value := math.Float64frombits(binary.LittleEndian.Uint64(src))
		src = src[8:]
		tm, n := readZigzag(src)
		if n <= 0 {
			return nil, fmt.Errorf("%w: batch record: bad time", ErrCorruptWAL)
		}
		src = src[n:]
		events = append(events, Event{Coord: coord, Value: value, Time: tm})
	}
	return events, nil
}

// recoverStreams rebuilds every stream found under the data directory:
// per stream, the newest valid checkpoint is restored and the WAL tail
// above it replayed (torn final record tolerated). A stream directory
// without a readable config file is skipped — it can only be the debris
// of an AddStream or RemoveStream the process died inside of.
func (e *Engine) recoverStreams() error {
	root := streamsRoot(e.dur.opts.Dir)
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("slicenstitch: scan data dir: %w", err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(root, ent.Name())
		cfgBytes, err := readFrameFile(filepath.Join(dir, "config"))
		if err != nil {
			if os.IsNotExist(err) {
				continue // half-created or half-removed stream
			}
			return fmt.Errorf("slicenstitch: recover %s: %w", ent.Name(), err)
		}
		var dto streamConfigDTO
		if err := gob.NewDecoder(bytes.NewReader(cfgBytes)).Decode(&dto); err != nil {
			return fmt.Errorf("slicenstitch: recover %s: decode config: %w", ent.Name(), err)
		}
		cfg := StreamConfig{
			Config:          dto.Config,
			MailboxCapacity: dto.MailboxCapacity,
			Backpressure:    Backpressure(dto.Backpressure),
			PublishEvery:    dto.PublishEvery,
		}.withDefaults()
		if err := cfg.validate(); err != nil {
			return fmt.Errorf("slicenstitch: recover %q: %w", dto.Name, err)
		}
		streamStart := time.Now()
		tr, err := recoverTracker(dir, cfg)
		if err != nil {
			return fmt.Errorf("slicenstitch: recover %q: %w", dto.Name, err)
		}
		ws := &metrics.WALStats{}
		wopts := e.dur.opts.walOptions()
		wopts.Stats = ws
		l, err := wal.Open(filepath.Join(dir, "wal"), wopts)
		if err != nil {
			return fmt.Errorf("slicenstitch: recover %q: %w", dto.Name, err)
		}
		sd := e.dur.newShardDur(dir, l, ws)
		sd.recoverNanos = time.Since(streamStart).Nanoseconds()
		if _, err := e.addShard(dto.Name, cfg, tr, sd); err != nil {
			l.Close()
			return fmt.Errorf("slicenstitch: recover %q: %w", dto.Name, err)
		}
	}
	return nil
}

// recoverTracker rebuilds one stream's tracker from its newest usable
// checkpoint plus WAL tail. When the newest checkpoint is unreadable it
// falls back to older ones (recovery then needs the WAL to still cover
// the older LSN — if truncation already reclaimed it, the error says so).
// With no checkpoint at all the whole WAL is replayed from a fresh
// tracker.
func recoverTracker(dir string, cfg StreamConfig) (*Tracker, error) {
	walDir := filepath.Join(dir, "wal")
	lsns, err := listCheckpoints(dir)
	if err != nil {
		return nil, err
	}
	var attemptErrs []error
	for _, lsn := range lsns {
		tr, err := recoverAttempt(dir, walDir, cfg, lsn)
		if err == nil {
			return tr, nil
		}
		attemptErrs = append(attemptErrs, fmt.Errorf("checkpoint %016x: %w", lsn, err))
	}
	// No (usable) checkpoint: replay from genesis.
	tr, err := recoverAttempt(dir, walDir, cfg, 0)
	if err == nil {
		return tr, nil
	}
	attemptErrs = append(attemptErrs, fmt.Errorf("from genesis: %w", err))
	return nil, errors.Join(attemptErrs...)
}

// recoverAttempt tries one recovery path: restore the checkpoint at lsn
// (or build a fresh tracker when lsn is 0 and no file exists) and replay
// the WAL from there.
func recoverAttempt(dir, walDir string, cfg StreamConfig, lsn uint64) (*Tracker, error) {
	var tr *Tracker
	if data, err := readFrameFile(ckptPath(dir, lsn)); err == nil {
		tr, err = Restore(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
	} else if lsn == 0 && os.IsNotExist(err) {
		tr, err = New(cfg.Config)
		if err != nil {
			return nil, err
		}
	} else {
		return nil, err
	}
	if _, err := os.Stat(walDir); os.IsNotExist(err) {
		// A checkpoint with no WAL directory: valid only when nothing
		// would be replayed anyway.
		return tr, nil
	}
	_, err := wal.Replay(walDir, lsn, func(_ uint64, payload []byte) error {
		_, aerr := applyRecord(tr, payload)
		return aerr
	})
	if err != nil {
		return nil, err
	}
	return tr, nil
}

// crash simulates a hard process kill for the durability tests: shards
// stop flushing (their WAL buffers are dropped un-flushed, pending
// checkpoints are suppressed), leaving the data directory exactly as a
// real mid-ingest kill would. The engine is unusable afterwards, like
// after Shutdown.
func (e *Engine) crash() {
	if e.follower != nil {
		e.follower.stop()
	}
	e.mu.Lock()
	e.closed = true
	shards := make([]*shard, 0, len(e.shards))
	for _, s := range e.shards {
		shards = append(shards, s)
	}
	e.shards = map[string]*shard{}
	e.mu.Unlock()
	for _, s := range shards {
		if s.dur != nil {
			s.dur.crashed.Store(true)
		}
		s.mb.Close()
	}
	for _, s := range shards {
		<-s.done
	}
}

// applyRecord replays one WAL record onto a tracker and returns how many
// events it applied (for publish/checkpoint cadence on replicas).
// Application errors (rejected events, a stale advance, a redundant
// start) are deliberately ignored: the original writer logged the record
// before applying it and hit the same deterministic outcome, so the
// replayed state matches the original either way. Only a malformed
// record — which the original writer could never have produced — is an
// error.
func applyRecord(tr *Tracker, payload []byte) (int, error) {
	if len(payload) == 0 {
		return 0, fmt.Errorf("%w: empty record", ErrCorruptWAL)
	}
	switch payload[0] {
	case recBatch:
		events, err := decodeBatchRecord(payload[1:])
		if err != nil {
			return 0, err
		}
		applied, _ := tr.PushBatch(events)
		return applied, nil
	case recStart:
		tr.Start()
	case recAdvance:
		tm, n := readZigzag(payload[1:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: advance record: bad time", ErrCorruptWAL)
		}
		tr.AdvanceTo(tm)
	default:
		return 0, fmt.Errorf("%w: unknown record type %d", ErrCorruptWAL, payload[0])
	}
	return 0, nil
}
