package slicenstitch_test

import (
	"bytes"
	"fmt"
	"log"

	"slicenstitch"
)

// The canonical three-phase flow: fill the initial window, warm-start with
// ALS, then track continuously — factors refresh on every push.
func Example() {
	tr, err := slicenstitch.New(slicenstitch.Config{
		Dims:   []int{4, 4}, // e.g. 4 sources × 4 destinations
		W:      3,           // window of 3 tensor units
		Period: 60,          // one unit = 60 time units
		Rank:   2,
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 — fill the initial window (route 1→2 is hot).
	for t := int64(0); t < 3*60; t += 5 {
		tr.Push([]int{1, 2}, 1, t)
		if t%15 == 0 {
			tr.Push([]int{int(t/5) % 4, int(t/10) % 4}, 1, t)
		}
	}

	// Phase 2 — ALS warm start.
	if err := tr.Start(); err != nil {
		log.Fatal(err)
	}

	// Phase 3 — continuous updates.
	for t := int64(3 * 60); t < 5*60; t += 5 {
		tr.Push([]int{1, 2}, 1, t)
	}

	hot, _ := tr.Predict([]int{1, 2}, 2)  // newest unit
	cold, _ := tr.Predict([]int{3, 3}, 2) // never-seen route
	fmt.Println("tracking:", tr.Started())
	fmt.Println("updates applied:", tr.Events() > 0)
	fmt.Println("hot route predicted higher:", hot > cold)
	fmt.Println("fitness positive:", tr.Fitness() > 0)
	// Output:
	// tracking: true
	// updates applied: true
	// hot route predicted higher: true
	// fitness positive: true
}

// Checkpoint and Restore resume tracking across process restarts.
func ExampleTracker_Checkpoint() {
	tr, _ := slicenstitch.New(slicenstitch.Config{
		Dims: []int{3, 3}, W: 2, Period: 10, Rank: 2, Seed: 1,
	})
	for t := int64(0); t < 20; t += 2 {
		tr.Push([]int{1, 1}, 1, t)
	}
	tr.Start()

	var buf bytes.Buffer
	if err := tr.Checkpoint(&buf); err != nil {
		log.Fatal(err)
	}
	resumed, err := slicenstitch.Restore(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("resumed online:", resumed.Started())
	fmt.Println("same window nnz:", resumed.NNZ() == tr.NNZ())
	// Output:
	// resumed online: true
	// same window nnz: true
}

// Algorithms are selected by name; SNSMat is the most accurate and
// slowest, SNSRndPlus (default) the fastest stable choice.
func ExampleConfig_algorithms() {
	for _, alg := range []slicenstitch.Algorithm{
		slicenstitch.SNSMat, slicenstitch.SNSVecPlus, slicenstitch.SNSRndPlus,
	} {
		tr, err := slicenstitch.New(slicenstitch.Config{
			Dims: []int{3, 3}, W: 2, Period: 10, Rank: 2, Algorithm: alg,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(tr.AlgorithmName())
	}
	// Output:
	// SNS-Mat
	// SNS-Vec+
	// SNS-Rnd+
}
