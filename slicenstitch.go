// Package slicenstitch is a from-scratch Go implementation of
// SliceNStitch: continuous CANDECOMP/PARAFAC (CP) decomposition of sparse
// tensor streams (Kwon, Park, Lee, Shin — ICDE 2021, arXiv:2102.11517).
//
// A Tracker models a multi-aspect data stream (timestamped tuples of
// categorical coordinates and a value) as a tensor window under the paper's
// continuous tensor model, and keeps a rank-R CP factorization of that
// window up to date on every single event — arrivals, unit-boundary shifts,
// and expirations — rather than once per period as conventional streaming
// CPD does.
//
// Typical use:
//
//	tr, _ := slicenstitch.New(slicenstitch.Config{
//		Dims:   []int{265, 265}, // e.g. taxi zones
//		W:      10,              // window length in tensor units
//		Period: 3600,            // unit length in stream time (1 hour)
//		Rank:   20,
//	})
//	for ev := range events {
//		tr.Push(ev.Coord, ev.Value, ev.Time) // fills the initial window …
//	}
//	tr.Start()                               // … ALS warm start, go online
//	for ev := range more {
//		tr.Push(ev.Coord, ev.Value, ev.Time) // every push updates factors
//	}
//	fmt.Println(tr.Fitness())
//
// The five update algorithms of the paper are selectable via
// Config.Algorithm; SNSRndPlus (the paper's recommended fast variant) is
// the default. See DESIGN.md and EXPERIMENTS.md for the faithful-
// reproduction details and internal/experiments for the harness that
// regenerates every table and figure of the paper's evaluation.
package slicenstitch

import (
	"fmt"
	"time"

	"slicenstitch/internal/als"
	"slicenstitch/internal/core"
	"slicenstitch/internal/cpd"
	"slicenstitch/internal/stream"
	"slicenstitch/internal/window"
)

// Algorithm selects one of the paper's five update rules.
type Algorithm string

// The five SliceNStitch variants (Section V of the paper).
const (
	// SNSMat is Algorithm 2: one full ALS sweep per event. Most accurate,
	// slowest.
	SNSMat Algorithm = "SNS-Mat"
	// SNSVec updates only the affected factor rows by least squares.
	// Fast, but numerically unstable on some streams (kept for fidelity;
	// prefer SNSVecPlus).
	SNSVec Algorithm = "SNS-Vec"
	// SNSRnd is SNSVec with θ-sampling for high-degree rows: constant-time
	// updates, same instability caveat.
	SNSRnd Algorithm = "SNS-Rnd"
	// SNSVecPlus is the stable coordinate-descent variant of SNSVec with
	// entry clipping.
	SNSVecPlus Algorithm = "SNS-Vec+"
	// SNSRndPlus is the stable sampled variant — the paper's recommended
	// configuration and the default.
	SNSRndPlus Algorithm = "SNS-Rnd+"
)

// Config configures a Tracker.
type Config struct {
	// Dims are the categorical mode sizes N_1..N_{M-1} (the time mode is
	// implicit). Required.
	Dims []int
	// W is the number of tensor units in the window (paper default 10).
	W int
	// Period is the tensor-unit length T in stream time units. Required.
	Period int64
	// Rank is the CP rank R (paper default 20).
	Rank int
	// Algorithm selects the update rule (default SNSRndPlus).
	Algorithm Algorithm
	// Theta is the sampling threshold θ for the Rnd variants (default 20).
	Theta int
	// Eta is the clipping threshold η for the ⁺ variants (default 1000).
	Eta float64
	// Seed drives sampling and the ALS warm start (default 1).
	Seed int64
	// ALSIters bounds the warm-start ALS sweeps in Start (default 20).
	ALSIters int
	// LatencyBudget, when positive and the algorithm is SNSRnd or
	// SNSRndPlus, enables the auto-θ controller: θ is adapted online so
	// the mean per-update latency tracks the budget — the paper's
	// practitioner's guide ("increase θ as much as possible within your
	// runtime budget") automated.
	LatencyBudget time.Duration
	// NonNegative, with SNSVecPlus or SNSRndPlus, constrains factor
	// entries to [0, Eta] — an extension for count data where negative
	// loadings have no interpretation. Ignored by the other algorithms.
	NonNegative bool
	// Parallelism, when greater than 1, solves the two independent
	// time-mode row updates of each shift event concurrently on a
	// persistent worker pool of that size. Results are bit-identical to
	// the sequential execution (the default, 0 or 1): backups, sampling
	// and Gram updates keep their sequential order, only the independent
	// row solves overlap. Trackers with a pool should be released with
	// Close. Ignored by SNSMat (which has no per-row outline).
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.W == 0 {
		c.W = 10
	}
	if c.Rank == 0 {
		c.Rank = 20
	}
	if c.Algorithm == "" {
		c.Algorithm = SNSRndPlus
	}
	if c.Theta == 0 {
		c.Theta = 20
	}
	if c.Eta == 0 {
		c.Eta = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ALSIters == 0 {
		c.ALSIters = 20
	}
	return c
}

func (c Config) validate() error {
	if len(c.Dims) == 0 {
		return fmt.Errorf("%w: Config.Dims is required", ErrConfig)
	}
	for m, d := range c.Dims {
		if d <= 0 {
			return fmt.Errorf("%w: Dims[%d] = %d must be positive", ErrConfig, m, d)
		}
	}
	if c.Period <= 0 {
		return fmt.Errorf("%w: Config.Period must be positive", ErrConfig)
	}
	if c.W <= 0 {
		return fmt.Errorf("%w: Config.W must be positive", ErrConfig)
	}
	if c.Rank <= 0 {
		return fmt.Errorf("%w: Config.Rank must be positive", ErrConfig)
	}
	if c.Theta <= 0 {
		return fmt.Errorf("%w: Config.Theta must be positive", ErrConfig)
	}
	if c.Eta <= 0 {
		return fmt.Errorf("%w: Config.Eta must be positive", ErrConfig)
	}
	switch c.Algorithm {
	case SNSMat, SNSVec, SNSRnd, SNSVecPlus, SNSRndPlus:
	default:
		return fmt.Errorf("%w: unknown algorithm %q", ErrConfig, c.Algorithm)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("%w: Config.Parallelism = %d must be non-negative", ErrConfig, c.Parallelism)
	}
	if c.Parallelism > 1024 {
		return fmt.Errorf("%w: Config.Parallelism = %d exceeds the 1024 cap", ErrConfig, c.Parallelism)
	}
	return nil
}

// Tracker maintains a continuous CP decomposition of a sparse tensor
// stream. It is not safe for concurrent use.
type Tracker struct {
	cfg     Config
	win     *window.Window
	dec     core.Decomposer
	started bool
	events  uint64
	// pool is the shared row-solve worker pool (nil unless
	// Config.Parallelism > 1), created with the first decomposer and
	// released by Close.
	pool *core.Pool
	// apply is the cached event sink (decomposer update + counter), built
	// once at Start so the per-event hot path creates no closures. Nil
	// while filling.
	apply func(window.Change)
	// idxBuf is the reusable full-index scratch for Predict/Observed.
	idxBuf []int
}

// New builds a Tracker in the filling phase: Push only feeds the tensor
// window until Start is called.
func New(cfg Config) (*Tracker, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Tracker{
		cfg:    cfg,
		win:    window.New(cfg.Dims, cfg.W, cfg.Period),
		idxBuf: make([]int, len(cfg.Dims)+1),
		pool:   newTrackerPool(cfg),
	}, nil
}

// newTrackerPool builds the row-solve worker pool for a configuration, or
// nil for the sequential default. Created at construction — not lazily at
// Start — so the field is immutable once the tracker escapes to an engine
// shard and concurrent Metrics scrapes can read it without a lock.
func newTrackerPool(cfg Config) *core.Pool {
	if cfg.Parallelism <= 1 {
		return nil
	}
	return core.NewPool(cfg.Parallelism, len(cfg.Dims)+1, cfg.Rank)
}

// checkCoord validates a categorical coordinate against the configuration.
func (t *Tracker) checkCoord(coord []int) error {
	if len(coord) != len(t.cfg.Dims) {
		return &CoordError{Mode: -1, Got: len(coord), Limit: len(t.cfg.Dims)}
	}
	for m, i := range coord {
		if i < 0 || i >= t.cfg.Dims[m] {
			return &CoordError{Mode: m, Got: i, Limit: t.cfg.Dims[m]}
		}
	}
	return nil
}

// pushOne is the per-event core shared by Push and PushBatch — validate,
// drain due scheduled events, ingest, apply — so the two ingestion paths
// cannot diverge. Allocation-free in steady state.
//
//sns:hotpath
func (t *Tracker) pushOne(coord []int, value float64, tm int64) error {
	if err := t.checkCoord(coord); err != nil {
		return err
	}
	if tm < t.win.Now() {
		return staleErr(tm, t.win.Now())
	}
	t.win.AdvanceTo(tm, t.apply)
	if ch, ok := t.win.Ingest(stream.Tuple{Coord: coord, Value: value, Time: tm}); ok && t.apply != nil {
		t.apply(ch)
	}
	return nil
}

// Push feeds one stream tuple. Before Start it only maintains the window;
// after Start every resulting event (the arrival plus any scheduled shifts
// or expirations that came due) also updates the factor matrices. Tuples
// must arrive in chronological order.
//
// Push does not retain coord (the window schedule stores a packed key), so
// callers may reuse the slice across calls. The steady-state path —
// validation, window maintenance, factor update — is allocation-free.
//
//sns:hotpath
func (t *Tracker) Push(coord []int, value float64, tm int64) error {
	return t.pushOne(coord, value, tm)
}

// PushBatch feeds a chronological batch of events in one pass, interleaving
// due scheduled shift/expiry events with the arrivals exactly as repeated
// Push calls would — the batch and event-at-a-time paths are equivalence-
// tested to produce bit-identical window and factor state. Events that fail
// validation (arity, range, time regression) are skipped; applied is the
// number accepted and err joins one *RejectError per rejected event
// (errors.Join), each carrying the event's batch index and the underlying
// cause — nil when every event was accepted, so the accept path allocates
// nothing. This is the engine shard writer's ingestion path: one call per
// mailbox batch instead of one per event.
//
//sns:hotpath
func (t *Tracker) PushBatch(events []Event) (applied int, err error) {
	var rej rejects
	for i := range events {
		ev := &events[i]
		if perr := t.pushOne(ev.Coord, ev.Value, ev.Time); perr != nil {
			rej = append(rej, &RejectError{Index: i, Err: perr})
			continue
		}
		applied++
	}
	return applied, rej.join()
}

// AdvanceTo moves stream time forward without a new tuple, processing any
// scheduled shift/expiry events (and, after Start, updating factors for
// each).
//
//sns:hotpath
func (t *Tracker) AdvanceTo(tm int64) error {
	if tm < t.win.Now() {
		return staleErr(tm, t.win.Now())
	}
	t.win.AdvanceTo(tm, t.apply)
	return nil
}

// Start warm-starts the factor matrices with ALS on the current window
// (Section VI-A of the paper) and switches the tracker online. It is an
// error to call it twice.
func (t *Tracker) Start() error {
	if t.started {
		return ErrAlreadyStarted
	}
	init := als.Run(t.win.X(), als.Options{Rank: t.cfg.Rank, MaxIters: t.cfg.ALSIters, Seed: t.cfg.Seed})
	t.dec = t.newDecomposer(init)
	t.goOnline()
	return nil
}

// newDecomposer builds the configured algorithm's decomposer around model.
// Shared by Start and checkpoint restore (adopt) so the two construction
// paths — including the auto-θ wrapping — cannot drift. The config is
// validated at construction, so the switch is exhaustive; nil is returned
// only for a corrupted Algorithm value and callers treat it as an error.
func (t *Tracker) newDecomposer(model *cpd.Model) core.Decomposer {
	switch t.cfg.Algorithm {
	case SNSMat:
		return core.NewSNSMat(t.win, model)
	case SNSVec:
		dec := core.NewSNSVec(t.win, model)
		t.attachPool(dec)
		return dec
	case SNSRnd:
		dec := core.NewSNSRnd(t.win, model, t.cfg.Theta, t.cfg.Seed)
		t.attachPool(dec)
		return wrapAuto(dec, t.cfg.LatencyBudget)
	case SNSVecPlus:
		dec := core.NewSNSVecPlus(t.win, model, t.cfg.Eta)
		dec.NonNegative = t.cfg.NonNegative
		t.attachPool(dec)
		return dec
	case SNSRndPlus:
		dec := core.NewSNSRndPlus(t.win, model, t.cfg.Theta, t.cfg.Eta, t.cfg.Seed)
		dec.NonNegative = t.cfg.NonNegative
		t.attachPool(dec)
		return wrapAuto(dec, t.cfg.LatencyBudget)
	}
	return nil
}

// attachPool hands the tracker's worker pool (from newTrackerPool, when
// Config.Parallelism > 1) to a freshly built decomposer. Attachment
// happens before any auto-θ wrapping, on the concrete variant; both the
// Start and checkpoint-restore construction paths flow through here.
func (t *Tracker) attachPool(dec interface{ EnablePool(*core.Pool) }) {
	if t.pool != nil {
		dec.EnablePool(t.pool)
	}
}

// Close releases the tracker's background resources — today, the
// Parallelism worker pool. It is idempotent, safe before Start, and a
// no-op for sequential trackers. The tracker itself remains usable
// afterward, but further events apply sequentially (a decomposer still
// holding the closed pool falls back on its own).
func (t *Tracker) Close() {
	if t.pool != nil {
		t.pool.Close()
	}
}

// PoolStats is a snapshot of the health counters of a tracker's parallel
// row-solve pool (Config.Parallelism).
type PoolStats struct {
	// Workers is the configured pool size.
	Workers int
	// PairEvents counts shift events whose independent time-mode row
	// pair was solved in parallel.
	PairEvents uint64
	// RowsSolved counts row solves executed on pool workers.
	RowsSolved uint64
}

// PoolStats reports the parallel row-solve pool's health counters; ok is
// false for sequential trackers (Parallelism ≤ 1).
func (t *Tracker) PoolStats() (stats PoolStats, ok bool) {
	if t.pool == nil {
		return PoolStats{}, false
	}
	ps := t.pool.Stats()
	return PoolStats{Workers: ps.Workers, PairEvents: ps.PairEvents, RowsSolved: ps.RowsSolved}, true
}

// goOnline marks the tracker started and installs the cached per-event
// apply sink. Shared by Start and checkpoint restore (adopt) so the two
// transitions cannot drift.
func (t *Tracker) goOnline() {
	t.started = true
	t.apply = func(ch window.Change) {
		t.dec.Apply(ch)
		t.events++
	}
}

// wrapAuto attaches the auto-θ controller when a latency budget is set.
func wrapAuto(inner core.ThetaAdjustable, budget time.Duration) core.Decomposer {
	if budget <= 0 {
		return inner
	}
	return core.NewAutoTheta(inner, budget)
}

// Started reports whether the tracker is online.
func (t *Tracker) Started() bool { return t.started }

// Now returns the current stream time.
func (t *Tracker) Now() int64 { return t.win.Now() }

// Events returns the number of factor updates applied since Start.
func (t *Tracker) Events() uint64 { return t.events }

// NNZ returns the number of nonzero entries in the current tensor window.
func (t *Tracker) NNZ() int { return t.win.X().NNZ() }

// checkIndex validates categorical coordinates and a time-mode index
// against mode sizes dims and window length w. Shared by every predict
// path (Tracker, SafeTracker, Engine).
func checkIndex(dims []int, w int, coord []int, timeIdx int) error {
	if len(coord) != len(dims) {
		return &CoordError{Mode: -1, Got: len(coord), Limit: len(dims)}
	}
	for m, i := range coord {
		if i < 0 || i >= dims[m] {
			return &CoordError{Mode: m, Got: i, Limit: dims[m]}
		}
	}
	if timeIdx < 0 || timeIdx >= w {
		return &CoordError{Mode: -1, Time: true, Got: timeIdx, Limit: w}
	}
	return nil
}

// checkIndex validates against the tracker's configuration. It reads only
// immutable config, so it is safe without synchronization.
func (t *Tracker) checkIndex(coord []int, timeIdx int) error {
	return checkIndex(t.cfg.Dims, t.cfg.W, coord, timeIdx)
}

// fullIndex builds the M-mode index in the tracker's reusable scratch
// (valid until the next Predict/Observed; the Tracker is single-goroutine
// by contract, so sharing the buffer is safe).
func (t *Tracker) fullIndex(coord []int, timeIdx int) []int {
	copy(t.idxBuf, coord)
	t.idxBuf[len(coord)] = timeIdx
	return t.idxBuf
}

// Predict evaluates the current model at categorical coordinates and a
// time-mode index in [0, W): W−1 is the newest (current) tensor unit.
func (t *Tracker) Predict(coord []int, timeIdx int) (float64, error) {
	if !t.started {
		return 0, ErrNotStarted
	}
	if err := t.checkIndex(coord, timeIdx); err != nil {
		return 0, err
	}
	return t.dec.Model().Predict(t.fullIndex(coord, timeIdx)), nil
}

// Observed returns the actual window entry at categorical coordinates and
// a time-mode index (0 when absent).
func (t *Tracker) Observed(coord []int, timeIdx int) (float64, error) {
	if err := t.checkIndex(coord, timeIdx); err != nil {
		return 0, err
	}
	return t.win.X().At(t.fullIndex(coord, timeIdx)), nil
}

// Fitness returns 1 − ‖X−X̃‖_F/‖X‖_F for the current window and model —
// the paper's accuracy metric. Zero before Start.
func (t *Tracker) Fitness() float64 {
	if !t.started {
		return 0
	}
	return cpd.Fitness(t.win.X(), t.dec.Model())
}

// Factors is a deep-copied snapshot of the CP model: one matrix per mode
// (categorical modes first, time mode last), each Rows×Rank, plus the
// column weights λ (all ones for the normalization-free variants).
type Factors struct {
	Matrices [][][]float64
	Lambda   []float64
}

// Factors snapshots the current model (nil before Start).
func (t *Tracker) Factors() *Factors {
	if !t.started {
		return nil
	}
	m := t.dec.Model()
	out := &Factors{Lambda: append([]float64(nil), m.Lambda...)}
	for _, f := range m.Factors {
		rows := make([][]float64, f.Rows())
		for i := range rows {
			rows[i] = append([]float64(nil), f.Row(i)...)
		}
		out.Matrices = append(out.Matrices, rows)
	}
	return out
}

// AlgorithmName returns the active algorithm's paper name ("SNS-Rnd+" …),
// or the configured one before Start.
func (t *Tracker) AlgorithmName() string {
	if t.started {
		return t.dec.Name()
	}
	return string(t.cfg.Algorithm)
}

// ParamCount returns the number of model parameters R·(ΣN_m + W).
func (t *Tracker) ParamCount() int {
	dims := 0
	for _, d := range t.cfg.Dims {
		dims += d
	}
	return t.cfg.Rank * (dims + t.cfg.W)
}
