package slicenstitch

import (
	"io"
	"sync"

	"slicenstitch/internal/engine"
)

// defaultPublishEvery is how many writes may elapse between snapshot
// republications on a SafeTracker.
const defaultPublishEvery = 256

// SafeTracker wraps a Tracker for one writer and many readers using
// snapshot isolation instead of a lock around every read. Writes (Push,
// AdvanceTo, Start, Checkpoint) are serialized by a mutex — the
// continuous tensor model is inherently sequential — and publish an
// immutable snapshot via an atomic pointer. Reads (Fitness, Factors,
// Predict, Events, …) load the snapshot wait-free, so readers never
// stall ingestion and ingestion never stalls readers.
//
// Snapshots are published every publish interval (default 256 writes —
// see SetPublishInterval) and on Start/Refresh, not on every write: the
// per-event hot path stays a plain tracker update plus a counter bump,
// and the O(nnz) fitness recomputation is amortized over the interval.
// Readers may therefore observe counters and model up to one interval
// stale; call Refresh to force an exact republish. Observed still reads
// the live window under the write lock.
type SafeTracker struct {
	mu  sync.Mutex
	tr  *Tracker
	pub engine.Publisher[trackerSnap]

	// Guarded by mu.
	publishEvery int
	sinceWrite   int
}

// trackerSnap is the immutable published view.
type trackerSnap struct {
	now       int64
	started   bool
	events    uint64
	nnz       int
	fitness   float64
	algorithm string
	params    int
	factors   *Factors
}

// NewSafe builds a snapshot-isolated tracker.
func NewSafe(cfg Config) (*SafeTracker, error) {
	tr, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return newSafe(tr), nil
}

func newSafe(tr *Tracker) *SafeTracker {
	s := &SafeTracker{tr: tr, publishEvery: defaultPublishEvery}
	s.mu.Lock()
	s.publishLocked()
	s.mu.Unlock()
	return s
}

// SetPublishInterval sets how many writes may elapse between snapshot
// republications (minimum 1). Call it before sharing the tracker across
// goroutines.
func (s *SafeTracker) SetPublishInterval(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.publishEvery = n
	s.mu.Unlock()
}

// publishLocked installs a fresh snapshot — counters, fitness, and a
// factor deep copy. Callers hold s.mu.
func (s *SafeTracker) publishLocked() {
	snap := &trackerSnap{
		now:       s.tr.Now(),
		started:   s.tr.Started(),
		events:    s.tr.Events(),
		nnz:       s.tr.NNZ(),
		algorithm: s.tr.AlgorithmName(),
		params:    s.tr.ParamCount(),
	}
	if snap.started {
		snap.fitness = s.tr.Fitness()
		snap.factors = s.tr.Factors()
	}
	s.pub.Publish(snap)
	s.sinceWrite = 0
}

// afterWriteLocked republishes once publishEvery writes have accumulated,
// keeping the per-event cost of the hot path to a counter bump. Callers
// hold s.mu.
func (s *SafeTracker) afterWriteLocked() {
	s.sinceWrite++
	if s.sinceWrite >= s.publishEvery {
		//lint:ignore hotpath amortized: one snapshot allocation per publish interval
		s.publishLocked()
	}
}

// Push forwards to Tracker.Push under the write lock, republishing once
// per publish interval.
//
//sns:hotpath
func (s *SafeTracker) Push(coord []int, value float64, tm int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.tr.Push(coord, value, tm)
	s.afterWriteLocked()
	return err
}

// PushBatch forwards to Tracker.PushBatch under the write lock. Like the
// Tracker form it returns the number of applied events plus an
// errors.Join of per-index *RejectError values; the whole batch counts as
// one write toward the publish interval (it is applied atomically with
// respect to readers of the live window anyway).
//
//sns:hotpath
func (s *SafeTracker) PushBatch(events []Event) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	applied, err := s.tr.PushBatch(events)
	s.afterWriteLocked()
	return applied, err
}

// AdvanceTo forwards to Tracker.AdvanceTo under the write lock,
// republishing once per publish interval.
//
//sns:hotpath
func (s *SafeTracker) AdvanceTo(tm int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.tr.AdvanceTo(tm)
	s.afterWriteLocked()
	return err
}

// Start forwards to Tracker.Start under the write lock and publishes a
// fresh snapshot including the warm-started model.
func (s *SafeTracker) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.tr.Start()
	s.publishLocked()
	return err
}

// Refresh forces an exact republish of every snapshot field, including
// fitness and factors.
func (s *SafeTracker) Refresh() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.publishLocked()
}

// Started reports whether the tracker is online (wait-free).
func (s *SafeTracker) Started() bool { return s.pub.Load().started }

// Now returns the published stream time (wait-free).
func (s *SafeTracker) Now() int64 { return s.pub.Load().now }

// Events returns the published update count (wait-free).
func (s *SafeTracker) Events() uint64 { return s.pub.Load().events }

// NNZ returns the published window nonzero count (wait-free).
func (s *SafeTracker) NNZ() int { return s.pub.Load().nnz }

// Fitness returns the published fitness (wait-free; at most one publish
// interval stale).
func (s *SafeTracker) Fitness() float64 { return s.pub.Load().fitness }

// Predict evaluates the published model (wait-free; at most one publish
// interval stale).
func (s *SafeTracker) Predict(coord []int, timeIdx int) (float64, error) {
	snap := s.pub.Load()
	if snap.factors == nil {
		return 0, ErrNotStarted
	}
	if err := s.tr.checkIndex(coord, timeIdx); err != nil {
		return 0, err
	}
	return snap.factors.PredictAt(coord, timeIdx), nil
}

// Observed returns the live window entry under the write lock (the
// window has no snapshot; this is the one read that can contend with the
// writer).
func (s *SafeTracker) Observed(coord []int, timeIdx int) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Observed(coord, timeIdx)
}

// Factors returns the published factor snapshot (wait-free; shared and
// immutable — do not mutate).
func (s *SafeTracker) Factors() *Factors { return s.pub.Load().factors }

// AlgorithmName returns the published algorithm name (wait-free).
func (s *SafeTracker) AlgorithmName() string { return s.pub.Load().algorithm }

// ParamCount returns the model parameter count (wait-free).
func (s *SafeTracker) ParamCount() int { return s.pub.Load().params }

// Checkpoint serializes the tracker under the write lock.
func (s *SafeTracker) Checkpoint(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Checkpoint(w)
}

// Close releases the underlying tracker's background resources (see
// Tracker.Close). Idempotent; readers stay wait-free throughout.
func (s *SafeTracker) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr.Close()
}

// PoolStats reports the underlying tracker's parallel row-solve pool
// counters; ok is false for sequential trackers.
func (s *SafeTracker) PoolStats() (stats PoolStats, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.PoolStats()
}

// RestoreSafe rebuilds a snapshot-isolated tracker from a Checkpoint
// stream.
func RestoreSafe(r io.Reader) (*SafeTracker, error) {
	tr, err := Restore(r)
	if err != nil {
		return nil, err
	}
	return newSafe(tr), nil
}
