package slicenstitch

import (
	"io"
	"sync"
)

// SafeTracker wraps a Tracker with a mutex so one goroutine can push
// events while others read fitness, predictions, or factor snapshots. All
// methods mirror Tracker's. Pushes are still serialized — the continuous
// tensor model is inherently sequential — so use SafeTracker for
// concurrent *readers*, not to parallelize ingestion.
type SafeTracker struct {
	mu sync.Mutex
	tr *Tracker
}

// NewSafe builds a mutex-guarded tracker.
func NewSafe(cfg Config) (*SafeTracker, error) {
	tr, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &SafeTracker{tr: tr}, nil
}

// Push forwards to Tracker.Push under the lock.
func (s *SafeTracker) Push(coord []int, value float64, tm int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Push(coord, value, tm)
}

// AdvanceTo forwards to Tracker.AdvanceTo under the lock.
func (s *SafeTracker) AdvanceTo(tm int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.AdvanceTo(tm)
}

// Start forwards to Tracker.Start under the lock.
func (s *SafeTracker) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Start()
}

// Started reports whether the tracker is online.
func (s *SafeTracker) Started() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Started()
}

// Now returns the current stream time.
func (s *SafeTracker) Now() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Now()
}

// Events returns the number of factor updates applied since Start.
func (s *SafeTracker) Events() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Events()
}

// NNZ returns the number of nonzeros in the current window.
func (s *SafeTracker) NNZ() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.NNZ()
}

// Fitness returns the current fitness.
func (s *SafeTracker) Fitness() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Fitness()
}

// Predict evaluates the model at the coordinates and time index.
func (s *SafeTracker) Predict(coord []int, timeIdx int) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Predict(coord, timeIdx)
}

// Observed returns the window entry at the coordinates and time index.
func (s *SafeTracker) Observed(coord []int, timeIdx int) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Observed(coord, timeIdx)
}

// Factors snapshots the model.
func (s *SafeTracker) Factors() *Factors {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Factors()
}

// AlgorithmName returns the active algorithm's name.
func (s *SafeTracker) AlgorithmName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.AlgorithmName()
}

// ParamCount returns the model parameter count.
func (s *SafeTracker) ParamCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.ParamCount()
}

// Checkpoint serializes the tracker under the lock.
func (s *SafeTracker) Checkpoint(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tr.Checkpoint(w)
}

// RestoreSafe rebuilds a mutex-guarded tracker from a Checkpoint stream.
func RestoreSafe(r io.Reader) (*SafeTracker, error) {
	tr, err := Restore(r)
	if err != nil {
		return nil, err
	}
	return &SafeTracker{tr: tr}, nil
}
