package slicenstitch

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sync"
	"time"

	"slicenstitch/internal/metrics"
	"slicenstitch/internal/repl"
	"slicenstitch/internal/wal"
)

// This file is the engine's replication surface. The leader side —
// TailWAL and WriteBootstrap — exposes each durable stream's WAL and
// newest checkpoint so replicas can bootstrap and tail; the follower
// side (FollowerOptions, followerState) consumes the same surface over
// HTTP via internal/repl and applies what it fetches on the shard writer
// goroutine, through the exact decode path recovery uses. The invariant
// that makes replicas bit-identical: a stream's state is a pure function
// of (checkpoint at LSN L, WAL records [L, n)), and followers copy the
// leader's record bytes verbatim into their own WAL.

// TailChunk is one bounded read of a stream's WAL returned by TailWAL.
type TailChunk struct {
	// Records are raw WAL record payloads in LSN order starting at From.
	Records [][]byte
	// From is the requested position, Next the position after the last
	// returned record (equal when the chunk is empty).
	From, Next uint64
	// FlushedLSN is the stream's flushed WAL position at response time;
	// OldestLSN the oldest LSN still retained. A caller whose position is
	// above FlushedLSN has diverged (the leader lost an unsynced tail)
	// and must re-bootstrap.
	FlushedLSN, OldestLSN uint64
	// More reports that the byte budget cut the chunk short.
	More bool
}

// TailWAL reads the named stream's WAL records starting at from, up to
// roughly maxBytes (default 1 MiB when <= 0). When the stream is caught
// up and wait is positive, it long-polls: the call blocks until a new
// record is flushed, ctx is done, or wait elapses, then returns whatever
// is available (possibly an empty chunk — not an error). A from below
// the retained WAL range returns ErrWALGap: the caller must re-bootstrap
// from a checkpoint via WriteBootstrap.
func (e *Engine) TailWAL(ctx context.Context, name string, from uint64, maxBytes int, wait time.Duration) (TailChunk, error) {
	s, err := e.shard(name)
	if err != nil {
		return TailChunk{}, err
	}
	if s.dur == nil {
		return TailChunk{}, fmt.Errorf("%w: stream %q has no WAL (replication requires durability)", ErrConfig, name)
	}
	walDir := filepath.Join(s.dur.dir, "wal")
	for {
		c, err := wal.ReadChunk(walDir, from, maxBytes)
		if err != nil {
			if errors.Is(err, wal.ErrGap) {
				return TailChunk{}, fmt.Errorf("%w: stream %q retains LSNs from %d, requested %d",
					ErrWALGap, name, s.dur.wal.OldestLSN(), from)
			}
			return TailChunk{}, err
		}
		out := TailChunk{
			Records:    c.Records,
			From:       from,
			Next:       c.Next,
			FlushedLSN: s.dur.wal.FlushedLSN(),
			OldestLSN:  s.dur.wal.OldestLSN(),
			More:       c.More,
		}
		// Long-poll only when genuinely caught up: a diverged caller
		// (from above the flushed tip) must see the positions immediately.
		if len(c.Records) > 0 || wait <= 0 || from > out.FlushedLSN {
			return out, nil
		}
		wctx, cancel := context.WithTimeout(ctx, wait)
		werr := s.dur.wal.WaitFlushed(wctx, from+1)
		cancel()
		if werr != nil {
			if ctx.Err() != nil {
				return TailChunk{}, ctx.Err()
			}
			// Wait elapsed or the log closed under shutdown: an empty
			// chunk with fresh positions is the correct answer either way.
			return out, nil
		}
		wait = 0 // records arrived; one more read, then return whatever it finds
	}
}

// WriteBootstrap writes the named stream's bootstrap blob — its durable
// config plus newest checkpoint — to w and returns the checkpoint's LSN.
// A fresh follower restores the blob and tails the WAL from that LSN, so
// it never needs history older than the newest checkpoint. When no
// checkpoint file exists yet the writer goroutine captures a live one.
func (e *Engine) WriteBootstrap(ctx context.Context, name string, w io.Writer) (uint64, error) {
	s, err := e.shard(name)
	if err != nil {
		return 0, err
	}
	if s.dur == nil {
		return 0, fmt.Errorf("%w: stream %q has no WAL (replication requires durability)", ErrConfig, name)
	}
	cfgBytes, err := readFrameFile(filepath.Join(s.dur.dir, "config"))
	if err != nil {
		return 0, fmt.Errorf("slicenstitch: bootstrap %q: read config: %w", name, err)
	}
	// Prefer the newest on-disk checkpoint: it is always WAL-covered (the
	// truncation floor is the oldest retained checkpoint) and costs the
	// writer nothing. Skip files the concurrent pruner removed or that
	// fail their CRC; capture live as the fallback.
	var lsn uint64
	var data []byte
	if lsns, lerr := listCheckpoints(s.dur.dir); lerr == nil {
		for _, l := range lsns { // newest first
			if d, rerr := readFrameFile(ckptPath(s.dur.dir, l)); rerr == nil {
				lsn, data = l, d
				break
			}
		}
	}
	if data == nil {
		var buf bytes.Buffer
		if err := s.control(ctx, shardMsg{op: opCheckpoint, w: &buf, lsn: &lsn}); err != nil {
			return 0, err
		}
		data = buf.Bytes()
	}
	if err := repl.WriteBootstrap(w, lsn, cfgBytes, data); err != nil {
		return 0, fmt.Errorf("slicenstitch: bootstrap %q: %w", name, err)
	}
	return lsn, nil
}

// FollowerOptions configures a read replica. See Options.Follower.
type FollowerOptions struct {
	// Leader is the leader's base URL, e.g. "http://leader:8080"
	// (required). The follower mirrors the leader's stream set: streams
	// appearing on the leader are bootstrapped, streams deleted there are
	// dropped locally.
	Leader string
	// PollTimeout is the long-poll wait requested per tail call (default
	// 5s). Keep it below the leader's HTTP write timeout.
	PollTimeout time.Duration
	// MaxChunkBytes bounds one tail response (default 1 MiB).
	MaxChunkBytes int
	// RetryMin/RetryMax bound the per-stream exponential backoff after
	// transport errors (defaults 100ms / 5s).
	RetryMin, RetryMax time.Duration
	// SyncEvery is how often the follower reconciles its stream set
	// against the leader's (default 3s).
	SyncEvery time.Duration
	// HTTPClient overrides the transport used to reach the leader; nil
	// uses http.DefaultClient under per-request context deadlines.
	HTTPClient *http.Client
}

func (o FollowerOptions) withDefaults() FollowerOptions {
	if o.PollTimeout <= 0 {
		o.PollTimeout = 5 * time.Second
	}
	if o.MaxChunkBytes <= 0 {
		o.MaxChunkBytes = 1 << 20
	}
	if o.RetryMin <= 0 {
		o.RetryMin = 100 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 5 * time.Second
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 3 * time.Second
	}
	return o
}

// FollowerInfo is the engine-level view of replication exposed through
// EngineMetrics.
type FollowerInfo struct {
	// Leader is the configured leader base URL.
	Leader string `json:"leader"`
	// Synced reports that the follower has completed at least one stream-
	// set reconciliation against the leader — before that, local streams
	// may be missing entirely.
	Synced bool `json:"synced"`
}

// followerState drives a read replica: one reconciler goroutine mirrors
// the leader's stream set, and one tailer goroutine per stream runs the
// internal/repl catch-up state machine against this engine.
type followerState struct {
	eng    *Engine
	opts   FollowerOptions
	client *repl.Client

	ctx      context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	stopOnce sync.Once

	mu         sync.Mutex
	syncedFlag bool
	tailers    map[string]*streamTailer
}

type streamTailer struct {
	cancel context.CancelFunc
	done   chan struct{}
	stats  *metrics.ReplStats
}

func newFollowerState(e *Engine, opts FollowerOptions) (*followerState, error) {
	opts = opts.withDefaults()
	u, err := url.Parse(opts.Leader)
	if err != nil || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		return nil, fmt.Errorf("%w: FollowerOptions.Leader must be an http(s) base URL, got %q", ErrConfig, opts.Leader)
	}
	//lint:ignore ctxfirst the follower's loops are engine-lifetime, not request-scoped; cancellation comes from Engine.Close
	ctx, cancel := context.WithCancel(context.Background())
	return &followerState{
		eng:     e,
		opts:    opts,
		client:  &repl.Client{BaseURL: opts.Leader, HTTP: opts.HTTPClient},
		ctx:     ctx,
		cancel:  cancel,
		tailers: map[string]*streamTailer{},
	}, nil
}

// start launches the reconciler. Called once from Open, after local
// recovery, before the engine is returned to the caller.
func (f *followerState) start() {
	f.wg.Add(1)
	go f.run()
}

// stop cancels every loop and waits for them. Idempotent; called from
// Shutdown/crash before mailboxes close, so in-flight applies drain.
func (f *followerState) stop() {
	f.stopOnce.Do(func() {
		f.cancel()
		f.wg.Wait()
	})
}

// isSynced reports whether at least one reconciliation has completed.
func (f *followerState) isSynced() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncedFlag
}

func (f *followerState) setSynced() {
	f.mu.Lock()
	f.syncedFlag = true
	f.mu.Unlock()
}

// run is the reconciler loop: mirror the leader's stream set, then sleep.
func (f *followerState) run() {
	defer f.wg.Done()
	timer := time.NewTimer(0) // reconcile immediately on start
	defer timer.Stop()
	for {
		select {
		case <-f.ctx.Done():
			return
		case <-timer.C:
		}
		if err := f.reconcile(); err == nil {
			f.setSynced()
		}
		timer.Reset(f.opts.SyncEvery)
	}
}

// reconcile fetches the leader's stream list, starts tailers for new
// streams, and drops local streams the leader no longer has.
func (f *followerState) reconcile() error {
	lctx, cancel := context.WithTimeout(f.ctx, 10*time.Second)
	names, err := f.client.Streams(lctx)
	cancel()
	if err != nil {
		return err
	}
	leaderSet := make(map[string]bool, len(names))
	for _, n := range names {
		leaderSet[n] = true
	}
	// Retire local streams the leader deleted.
	for _, n := range f.eng.Streams() {
		if leaderSet[n] {
			continue
		}
		f.stopTailer(n)
		f.eng.dropStream(n)
	}
	for _, n := range names {
		f.ensureTailer(n)
	}
	return nil
}

// ensureTailer starts (once) the named stream's tail loop. A stream with
// recovered local state resumes from its own WAL position; one without
// bootstraps from the leader's newest checkpoint first.
func (f *followerState) ensureTailer(name string) {
	f.mu.Lock()
	if _, ok := f.tailers[name]; ok {
		f.mu.Unlock()
		return
	}
	stats := metrics.NewReplStats()
	tctx, cancel := context.WithCancel(f.ctx)
	st := &streamTailer{cancel: cancel, done: make(chan struct{}), stats: stats}
	f.tailers[name] = st
	f.mu.Unlock()

	needBootstrap := true
	if s, err := f.eng.shard(name); err == nil && s.dur != nil {
		s.repl.Store(stats)
		stats.SetPosition(s.dur.applied.Load(), s.dur.applied.Load())
		needBootstrap = false
	}
	t := &repl.Tailer{
		Client:  f.client,
		Stream:  name,
		Replica: &followerReplica{f: f, name: name, stats: stats},
		Stats:   stats,
		Opts: repl.TailerOptions{
			PollTimeout:   f.opts.PollTimeout,
			MaxChunkBytes: f.opts.MaxChunkBytes,
			RetryMin:      f.opts.RetryMin,
			RetryMax:      f.opts.RetryMax,
		},
		NeedBootstrap: needBootstrap,
	}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		defer close(st.done)
		t.Run(tctx)
	}()
}

// stopTailer cancels the named stream's tail loop and waits for it.
func (f *followerState) stopTailer(name string) {
	f.mu.Lock()
	st, ok := f.tailers[name]
	if ok {
		delete(f.tailers, name)
	}
	f.mu.Unlock()
	if ok {
		st.cancel()
		<-st.done
	}
}

// replStats returns the named stream's tailer stats (nil when no tailer
// is running yet).
func (f *followerState) replStats(name string) *metrics.ReplStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st, ok := f.tailers[name]; ok {
		return st.stats
	}
	return nil
}

// bootstrapStream replaces all local state for the stream with a leader
// checkpoint: it validates the blob, wipes any existing local shard and
// directory, writes the leader's exact config and checkpoint bytes,
// opens a WAL starting at the checkpoint's LSN, and wires the restored
// tracker in through the same addShard path recovery uses.
func (f *followerState) bootstrapStream(name string, stats *metrics.ReplStats, lsn uint64, cfgBytes, ckpt []byte) error {
	e := f.eng
	var dto streamConfigDTO
	if err := gob.NewDecoder(bytes.NewReader(cfgBytes)).Decode(&dto); err != nil {
		return fmt.Errorf("slicenstitch: bootstrap %q: decode config: %w", name, err)
	}
	if dto.Name != name {
		return fmt.Errorf("%w: bootstrap config is for stream %q, want %q", ErrConfig, dto.Name, name)
	}
	cfg := StreamConfig{
		Config:          dto.Config,
		MailboxCapacity: dto.MailboxCapacity,
		Backpressure:    Backpressure(dto.Backpressure),
		PublishEvery:    dto.PublishEvery,
	}.withDefaults()
	if err := cfg.validate(); err != nil {
		return err
	}
	tr, err := Restore(bytes.NewReader(ckpt))
	if err != nil {
		return fmt.Errorf("slicenstitch: bootstrap %q: %w", name, err)
	}
	e.dur.mu.Lock()
	defer e.dur.mu.Unlock()
	// Drop the previous incarnation, if any (the re-bootstrap path).
	e.mu.Lock()
	prev, had := e.shards[name]
	if had {
		delete(e.shards, name)
	}
	e.mu.Unlock()
	if had {
		prev.stop()
	}
	if err := e.dur.removeStream(name); err != nil {
		return fmt.Errorf("slicenstitch: bootstrap %q: clear local state: %w", name, err)
	}
	dir := filepath.Join(streamsRoot(e.dur.opts.Dir), encodeStreamDir(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("slicenstitch: bootstrap %q: %w", name, err)
	}
	// The leader's exact config and checkpoint bytes land on disk, so a
	// follower restart recovers through the normal path — and recovers to
	// bit-identical state.
	if err := frameFile(filepath.Join(dir, "config"), cfgBytes); err != nil {
		return fmt.Errorf("slicenstitch: bootstrap %q: write config: %w", name, err)
	}
	if err := frameFile(ckptPath(dir, lsn), ckpt); err != nil {
		return fmt.Errorf("slicenstitch: bootstrap %q: write checkpoint: %w", name, err)
	}
	ws := &metrics.WALStats{}
	wopts := e.dur.opts.walOptions()
	wopts.Stats = ws
	wopts.StartLSN = lsn
	l, err := wal.Open(filepath.Join(dir, "wal"), wopts)
	if err != nil {
		return fmt.Errorf("slicenstitch: bootstrap %q: %w", name, err)
	}
	sd := e.dur.newShardDur(dir, l, ws)
	s, err := e.addShard(name, cfg, tr, sd)
	if err != nil {
		l.Close()
		return err
	}
	s.repl.Store(stats)
	return nil
}

// followerReplica adapts one engine stream to the repl.Replica surface
// the tailer drives. All methods run on the stream's tailer goroutine.
type followerReplica struct {
	f     *followerState
	name  string
	stats *metrics.ReplStats
}

// NextLSN is the local WAL's flushed position — between applies the two
// coincide, and flushed is the cross-goroutine-safe mirror.
func (r *followerReplica) NextLSN() uint64 {
	s, err := r.f.eng.shard(r.name)
	if err != nil || s.dur == nil {
		return 0
	}
	return s.dur.wal.FlushedLSN()
}

// Apply ships one chunk to the shard writer goroutine, which appends the
// records to the local WAL and applies them through the recovery path.
func (r *followerReplica) Apply(ctx context.Context, first uint64, records [][]byte) error {
	s, err := r.f.eng.shard(r.name)
	if err != nil {
		return err
	}
	return s.control(ctx, shardMsg{op: opReplApply, first: first, recs: records})
}

// Bootstrap replaces the stream's local state with the leader checkpoint.
func (r *followerReplica) Bootstrap(_ context.Context, lsn uint64, config, checkpoint []byte) error {
	return r.f.bootstrapStream(r.name, r.stats, lsn, config, checkpoint)
}
