// Benchmarks regenerating the paper's tables and figures (one bench per
// artifact; see DESIGN.md §3 for the experiment index) plus per-update
// microbenchmarks for every method — the quantity behind Figs. 1e, 5a and 7.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The per-update benches measure one end-to-end event (window maintenance +
// factor update) per iteration on the density-preserving bench presets.
package slicenstitch

import (
	"testing"

	"slicenstitch/internal/als"
	"slicenstitch/internal/baselines"
	"slicenstitch/internal/core"
	"slicenstitch/internal/cpd"
	"slicenstitch/internal/datagen"
	"slicenstitch/internal/experiments"
	"slicenstitch/internal/window"
)

// benchEnv primes a window at the end of the initial W-period fill and
// returns its generator positioned to continue the stream.
func benchEnv(b *testing.B, p datagen.Preset, rank int) (*window.Window, *datagen.Generator, int64, *cpd.Model) {
	b.Helper()
	gen := datagen.NewGenerator(p, 7)
	w := 10
	t0 := int64(w) * p.DefaultPeriod
	win := window.New(p.Dims, w, p.DefaultPeriod)
	for t := int64(0); t <= t0; t++ {
		win.AdvanceTo(t, nil)
		for _, tp := range gen.Tick(t) {
			win.Ingest(tp)
		}
	}
	init := als.Run(win.X(), als.Options{Rank: rank, Seed: 1})
	return win, gen, t0, init
}

// benchEventUpdates times b.N end-to-end events (window + Apply).
func benchEventUpdates(b *testing.B, p datagen.Preset, mk func(*window.Window, *cpd.Model) core.Decomposer) {
	win, gen, t0, init := benchEnv(b, p, 20)
	dec := mk(win, init)
	count := 0
	apply := func(ch window.Change) {
		dec.Apply(ch)
		count++
	}
	t := t0
	b.ResetTimer()
	for count < b.N {
		t++
		win.AdvanceTo(t, apply)
		for _, tp := range gen.Tick(t) {
			if ch, ok := win.Ingest(tp); ok {
				apply(ch)
			}
		}
	}
}

// benchPeriodUpdates times b.N per-period updates of a baseline.
func benchPeriodUpdates(b *testing.B, p datagen.Preset, mk func(*window.Window, *cpd.Model) baselines.Periodic) {
	win, gen, t0, init := benchEnv(b, p, 20)
	dec := mk(win, init)
	t := t0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for step := int64(0); step < p.DefaultPeriod; step++ {
			t++
			win.AdvanceTo(t, nil)
			for _, tp := range gen.Tick(t) {
				win.Ingest(tp)
			}
		}
		b.StartTimer()
		dec.OnPeriod(win.X())
	}
}

// --- Fig. 5a: runtime per update, SliceNStitch variants ---

func BenchmarkFig5UpdateSNSMat(b *testing.B) {
	benchEventUpdates(b, datagen.ChicagoCrime.Bench(), func(w *window.Window, m *cpd.Model) core.Decomposer {
		return core.NewSNSMat(w, m)
	})
}

func BenchmarkFig5UpdateSNSVec(b *testing.B) {
	benchEventUpdates(b, datagen.ChicagoCrime.Bench(), func(w *window.Window, m *cpd.Model) core.Decomposer {
		return core.NewSNSVec(w, m)
	})
}

func BenchmarkFig5UpdateSNSRnd(b *testing.B) {
	benchEventUpdates(b, datagen.ChicagoCrime.Bench(), func(w *window.Window, m *cpd.Model) core.Decomposer {
		return core.NewSNSRnd(w, m, 20, 3)
	})
}

func BenchmarkFig5UpdateSNSVecPlus(b *testing.B) {
	benchEventUpdates(b, datagen.ChicagoCrime.Bench(), func(w *window.Window, m *cpd.Model) core.Decomposer {
		return core.NewSNSVecPlus(w, m, 1000)
	})
}

func BenchmarkFig5UpdateSNSRndPlus(b *testing.B) {
	benchEventUpdates(b, datagen.ChicagoCrime.Bench(), func(w *window.Window, m *cpd.Model) core.Decomposer {
		return core.NewSNSRndPlus(w, m, 20, 1000, 3)
	})
}

// --- Fig. 5a: runtime per update, periodic baselines ---

func BenchmarkFig5UpdateALS(b *testing.B) {
	benchPeriodUpdates(b, datagen.ChicagoCrime.Bench(), func(w *window.Window, m *cpd.Model) baselines.Periodic {
		return baselines.NewPeriodicALS(m, 5)
	})
}

func BenchmarkFig5UpdateOnlineSCP(b *testing.B) {
	benchPeriodUpdates(b, datagen.ChicagoCrime.Bench(), func(w *window.Window, m *cpd.Model) baselines.Periodic {
		return baselines.NewOnlineSCP(w.X(), m)
	})
}

func BenchmarkFig5UpdateCPStream(b *testing.B) {
	benchPeriodUpdates(b, datagen.ChicagoCrime.Bench(), func(w *window.Window, m *cpd.Model) baselines.Periodic {
		return baselines.NewCPStream(w.X(), m, 0)
	})
}

func BenchmarkFig5UpdateNeCPD1(b *testing.B) {
	benchPeriodUpdates(b, datagen.ChicagoCrime.Bench(), func(w *window.Window, m *cpd.Model) baselines.Periodic {
		return baselines.NewNeCPD(m, 1, 0)
	})
}

func BenchmarkFig5UpdateNeCPD10(b *testing.B) {
	benchPeriodUpdates(b, datagen.ChicagoCrime.Bench(), func(w *window.Window, m *cpd.Model) baselines.Periodic {
		return baselines.NewNeCPD(m, 10, 0)
	})
}

// --- Fig. 1e: continuous CPD per-update cost on the taxi workload ---

func BenchmarkFig1ContinuousUpdate(b *testing.B) {
	benchEventUpdates(b, datagen.NewYorkTaxi.Bench(), func(w *window.Window, m *cpd.Model) core.Decomposer {
		return core.NewSNSRnd(w, m, 20, 3)
	})
}

// --- Fig. 7: θ sensitivity of the sampled update ---

func BenchmarkFig7UpdateTheta10(b *testing.B) { benchTheta(b, 10) }
func BenchmarkFig7UpdateTheta20(b *testing.B) { benchTheta(b, 20) }
func BenchmarkFig7UpdateTheta40(b *testing.B) { benchTheta(b, 40) }
func BenchmarkFig7UpdateTheta80(b *testing.B) { benchTheta(b, 80) }

func benchTheta(b *testing.B, theta int) {
	benchEventUpdates(b, datagen.NewYorkTaxi.Bench(), func(w *window.Window, m *cpd.Model) core.Decomposer {
		return core.NewSNSRndPlus(w, m, theta, 1000, 3)
	})
}

// --- Whole-experiment benches (one tiny but complete run per iteration) ---

func tinyOpt() experiments.Options {
	return experiments.Options{Scale: 0.5, Periods: 3, Rank: 8, W: 4, Seed: 1, ALSSweeps: 2, Eta: 1000}
}

func BenchmarkTable2DatasetGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(tinyOpt(), 500)
	}
}

func BenchmarkFig1Experiment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig1(tinyOpt(), []int64{600, 3600})
	}
}

func BenchmarkFig4RelativeFitness(b *testing.B) {
	presets := []datagen.Preset{datagen.ChicagoCrime}
	for i := 0; i < b.N; i++ {
		experiments.RunFig4(presets, tinyOpt())
	}
}

func BenchmarkFig6Scalability(b *testing.B) {
	presets := []datagen.Preset{datagen.ChicagoCrime}
	for i := 0; i < b.N; i++ {
		experiments.RunFig6(presets, tinyOpt())
	}
}

func BenchmarkFig7ThetaSweep(b *testing.B) {
	presets := []datagen.Preset{datagen.ChicagoCrime}
	for i := 0; i < b.N; i++ {
		experiments.RunFig7(presets, tinyOpt(), []float64{0.5, 1})
	}
}

func BenchmarkFig8EtaSweep(b *testing.B) {
	presets := []datagen.Preset{datagen.ChicagoCrime}
	for i := 0; i < b.N; i++ {
		experiments.RunFig8(presets, tinyOpt(), []float64{1000})
	}
}

func BenchmarkFig9Anomaly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunFig9(tinyOpt(), 5, 15)
	}
}

// --- Supporting kernels ---

func BenchmarkInitALS(b *testing.B) {
	win, _, _, _ := benchEnv(b, datagen.ChicagoCrime.Bench(), 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		als.Run(win.X(), als.Options{Rank: 20, MaxIters: 5, Seed: 1})
	}
}

func BenchmarkFitnessEvaluation(b *testing.B) {
	win, _, _, init := benchEnv(b, datagen.ChicagoCrime.Bench(), 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpd.Fitness(win.X(), init)
	}
}

// BenchmarkPublicAPIPush measures the end-to-end public Tracker push path.
func BenchmarkPublicAPIPush(b *testing.B) {
	p := datagen.ChicagoCrime.Bench()
	tr, err := New(Config{Dims: p.Dims, W: 10, Period: p.DefaultPeriod, Rank: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gen := datagen.NewGenerator(p, 7)
	t := int64(0)
	for t <= int64(10)*p.DefaultPeriod {
		for _, tp := range gen.Tick(t) {
			if err := tr.Push(tp.Coord, tp.Value, tp.Time); err != nil {
				b.Fatal(err)
			}
		}
		t++
	}
	if err := tr.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	pushed := 0
	for pushed < b.N {
		for _, tp := range gen.Tick(t) {
			if err := tr.Push(tp.Coord, tp.Value, tp.Time); err != nil {
				b.Fatal(err)
			}
			pushed++
		}
		t++
	}
}
