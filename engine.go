package slicenstitch

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"slicenstitch/internal/engine"
	"slicenstitch/internal/metrics"
)

// Engine manages many named tracker shards — one per tensor stream or
// tenant — behind a single API. Each shard is driven by a dedicated
// single-writer goroutine fed from a bounded mailbox, which preserves the
// sequential per-stream update order the continuous tensor model requires
// while letting shards run fully in parallel. The writer periodically
// publishes an immutable Snapshot, so reads (Snapshot, Predict, Streams)
// are wait-free and never touch the ingestion hot path.
//
// The primary client surface is the *Stream handle: AddStream and Stream
// return one, and its methods pin the shard once so the per-call cost is
// a mailbox operation with no registry lookup. The name-keyed Engine
// methods remain as a convenience; they perform one read-locked map
// lookup per call and then run the same code the handle does.
//
// Ingestion is asynchronous: PushBatch hands a batch to the shard's
// mailbox and returns. What happens when the mailbox is full is the
// stream's Backpressure policy; per-event validation errors surface in
// the shard's stats and the snapshot's LastError rather than from
// PushBatch. Use Flush to wait for everything queued so far to be
// applied. Every blocking operation takes a context.Context and unblocks
// with ctx.Err() on cancellation.
type Engine struct {
	mu     sync.RWMutex
	shards map[string]*shard
	closed bool
	// dur is the engine-level durability state (nil when the engine runs
	// purely in memory). See Open and DurabilityOptions.
	dur *durEngine
	// follower is the replication state of a read replica (nil on a
	// leader or standalone engine). Set once in Open before the engine is
	// shared, read-only afterwards. See FollowerOptions.
	follower *followerState
}

// Backpressure selects what PushBatch does when a stream's mailbox is
// full.
type Backpressure int

const (
	// BackpressureBlock makes PushBatch wait for mailbox space (default).
	BackpressureBlock Backpressure = iota
	// BackpressureDropOldest evicts the oldest queued batch to admit the
	// new one; PushBatch never blocks. Dropped batches are counted in
	// Snapshot.Dropped.
	BackpressureDropOldest
	// BackpressureError makes PushBatch fail fast with ErrBackpressure.
	BackpressureError
)

func (b Backpressure) policy() engine.Policy {
	switch b {
	case BackpressureDropOldest:
		return engine.DropOldest
	case BackpressureError:
		return engine.Error
	}
	return engine.Block
}

// String names the policy for status output.
func (b Backpressure) String() string { return b.policy().String() }

// StreamConfig configures one engine shard: the embedded tracker Config
// plus the serving knobs.
type StreamConfig struct {
	Config
	// MailboxCapacity bounds the number of queued batches before the
	// Backpressure policy applies (default 256).
	MailboxCapacity int
	// Backpressure selects the full-mailbox behaviour (default
	// BackpressureBlock).
	Backpressure Backpressure
	// PublishEvery is how many applied events may elapse between
	// snapshot publishes (default 256). Smaller values give fresher
	// reads; larger ones amortize the O(nnz) fitness recomputation over
	// more updates.
	PublishEvery int
	// RateLimit caps admitted ingest at this many events per second via
	// a token bucket checked in PushBatch, before the mailbox. Offered
	// load beyond the limit is refused instantly with a *RateLimitError
	// (wrapping ErrRateLimited) carrying a retry hint — admission
	// control, distinct from the Backpressure policy that governs a full
	// mailbox. 0 (the default) disables the limit.
	RateLimit float64
	// RateBurst is the token bucket's depth in events — the largest
	// burst admitted at once (default: RateLimit rounded up, at least
	// 1). A batch larger than the burst can never be admitted, so keep
	// RateBurst at or above the largest batch producers send. Only
	// meaningful with RateLimit > 0.
	RateBurst float64
}

func (c StreamConfig) withDefaults() StreamConfig {
	c.Config = c.Config.withDefaults()
	if c.MailboxCapacity == 0 {
		c.MailboxCapacity = 256
	}
	if c.PublishEvery == 0 {
		c.PublishEvery = 256
	}
	if c.RateLimit > 0 && c.RateBurst == 0 {
		c.RateBurst = math.Ceil(c.RateLimit)
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	return c
}

func (c StreamConfig) validate() error {
	if err := c.Config.validate(); err != nil {
		return err
	}
	if c.MailboxCapacity < 1 {
		return fmt.Errorf("%w: StreamConfig.MailboxCapacity must be positive", ErrConfig)
	}
	if c.PublishEvery < 1 {
		return fmt.Errorf("%w: StreamConfig.PublishEvery must be positive", ErrConfig)
	}
	switch c.Backpressure {
	case BackpressureBlock, BackpressureDropOldest, BackpressureError:
	default:
		return fmt.Errorf("%w: unknown backpressure policy %d", ErrConfig, c.Backpressure)
	}
	if c.RateLimit < 0 || math.IsNaN(c.RateLimit) || math.IsInf(c.RateLimit, 0) {
		return fmt.Errorf("%w: StreamConfig.RateLimit must be a non-negative finite number", ErrConfig)
	}
	if c.RateBurst < 0 || math.IsNaN(c.RateBurst) || math.IsInf(c.RateBurst, 0) {
		return fmt.Errorf("%w: StreamConfig.RateBurst must be a non-negative finite number", ErrConfig)
	}
	if c.RateLimit == 0 && c.RateBurst > 0 {
		return fmt.Errorf("%w: StreamConfig.RateBurst requires RateLimit > 0", ErrConfig)
	}
	return nil
}

// Event is one stream tuple for batch ingestion.
type Event struct {
	Coord []int   `json:"coord"`
	Value float64 `json:"value"`
	Time  int64   `json:"time"`
}

// Snapshot is the immutable published view of one shard. Readers get a
// value copy; the Factors pointer (and Dims slice) are shared but never
// mutated after publish.
type Snapshot struct {
	Stream    string   `json:"stream"`
	Now       int64    `json:"streamNow"`
	Started   bool     `json:"started"`
	Events    uint64   `json:"events"`
	NNZ       int      `json:"nnz"`
	Fitness   float64  `json:"fitness"`
	Algorithm string   `json:"algorithm"`
	Params    int      `json:"params"`
	Dims      []int    `json:"dims"`
	W         int      `json:"w"`
	Period    int64    `json:"period"`
	Factors   *Factors `json:"-"`
	// LastError is the most recent per-event ingestion error of the
	// current publish interval (errored batches refresh it immediately,
	// so it is visible even on a stream whose events are all rejected).
	// Each model publish closes the interval and clears it, so a healthy
	// stream stops reporting a long-gone error after at most one
	// interval; ErrorsSincePublish says how many rejections the interval
	// has seen.
	LastError string `json:"lastError,omitempty"`
	// ErrorsSincePublish counts the events rejected in the current
	// publish interval (0 on a healthy stream). The lifetime total is in
	// IngestErrors.
	ErrorsSincePublish uint64 `json:"errorsSincePublish"`
	// LastBatchRejected is how many events of the most recently applied
	// batch were rejected (0 for a clean batch) — the per-batch view of
	// the rejection counters, refreshed on every batch.
	LastBatchRejected int `json:"lastBatchRejected"`
	// Serving-side counters, stamped at read time rather than publish
	// time so they are always current. IngestErrors is the lifetime
	// rejected-event count.
	Ingested     uint64              `json:"ingested"`
	IngestErrors uint64              `json:"ingestErrors"`
	Dropped      uint64              `json:"droppedBatches"`
	QueueDepth   int                 `json:"queueDepth"`
	QueueCap     int                 `json:"queueCap"`
	Backpressure string              `json:"backpressure"`
	Stats        metrics.ShardReport `json:"stats"`
	// DurabilityError surfaces a failed WAL append/commit or background
	// checkpoint on a durable engine: ingestion keeps running in memory,
	// but state changes after the failure may not survive a crash, so
	// operators should treat a non-empty value as an incident. Empty on
	// a healthy or non-durable stream.
	DurabilityError string `json:"durabilityError,omitempty"`
	// Durable position, stamped at read time on a durable engine (all
	// zero otherwise): AppliedLSN is the WAL position just past the last
	// record whose effects are in the tracker, and the live WAL retains
	// [WALOldestLSN, WALNextLSN) — the tailable range for replication and
	// the operator's "where am I" for capacity planning.
	AppliedLSN   uint64 `json:"appliedLSN,omitempty"`
	WALOldestLSN uint64 `json:"walOldestLSN,omitempty"`
	WALNextLSN   uint64 `json:"walNextLSN,omitempty"`
	// Replication is the follower-side view of this stream's tailer —
	// lag, bootstraps, reconnects. Nil on a leader or standalone engine.
	Replication *metrics.ReplReport `json:"replication,omitempty"`
	// Admission is the stream's admission-control view — configured
	// rate/burst, current token fill, accepted/limited counters. Nil
	// unless the stream has a RateLimit.
	Admission *metrics.AdmissionReport `json:"admission,omitempty"`
}

// shardOp is a mailbox message kind.
type shardOp int

const (
	opBatch shardOp = iota
	opStart
	opAdvance
	opFlush
	opCheckpoint
	opObserved
	opReplApply
)

type shardMsg struct {
	op    shardOp
	batch []Event
	tm    int64
	w     io.Writer
	coord []int
	idx   int
	val   *float64
	// lsn, when non-nil on an opCheckpoint, receives the shard's WAL
	// position at capture (0 on a non-durable engine).
	lsn *uint64
	// recs/first carry an opReplApply chunk: raw WAL record payloads
	// whose first LSN is first, shipped from the leader by a follower's
	// tailer.
	recs  [][]byte
	first uint64
	done  chan error
	// bestEffort marks a message whose sender waits with a deadline and
	// tolerates never being answered; under DropOldest it is evictable
	// like a batch, so queued bounded reads are shed before data is.
	bestEffort bool
}

// shard pairs a Tracker with its mailbox, writer goroutine, and snapshot
// publisher. After spawn only the writer goroutine touches tr and the
// writer-local fields.
type shard struct {
	eng   *Engine
	name  string
	cfg   StreamConfig
	tr    *Tracker
	mb    *engine.Mailbox[shardMsg]
	pub   engine.Publisher[Snapshot]
	stats *metrics.ShardStats
	done  <-chan struct{}
	// dur is the shard's durability attachment (nil on an in-memory
	// engine): the WAL appender plus the background checkpointer.
	dur *shardDur
	// repl, on a follower, is the stream's replication stats, installed
	// by the tailer and read wait-free by Snapshot/Metrics.
	repl atomic.Pointer[metrics.ReplStats]
	// limiter and adm are the stream's admission token bucket and its
	// decision counters — nil unless StreamConfig.RateLimit > 0. They are
	// touched on producer goroutines (PushBatch callers), never by the
	// writer: admission happens before the mailbox. The replication apply
	// path bypasses them by construction — a follower re-applies what the
	// leader already admitted.
	limiter *engine.TokenBucket
	adm     *metrics.AdmissionStats

	// Writer-local state: owned by the shard's writer goroutine, crossing
	// to readers only inside published snapshots. snsvet's writeronly
	// analyzer enforces that nothing outside a //sns:writer function
	// mutates these.

	//sns:writer-only
	sincePublish int
	//sns:writer-only
	errsSince int
	//sns:writer-only
	lastBatchRejected int
	//sns:writer-only
	lastErr string
	//sns:writer-only
	walErr error
	//sns:writer-only
	sinceCkpt int
}

// NewEngine returns an empty engine. Add streams with AddStream.
func NewEngine() *Engine {
	return &Engine{shards: make(map[string]*shard)}
}

// AddStream registers a new named stream, spawns its writer, and returns
// the stream's handle. The name must be unique and non-empty. On a
// durable engine the stream's directory (config file plus empty WAL) is
// created before the stream becomes reachable, so a crash right after
// AddStream returns recovers the stream.
func (e *Engine) AddStream(name string, cfg StreamConfig) (*Stream, error) {
	if e.follower != nil {
		return nil, fmt.Errorf("%w: streams are defined on the leader", ErrReadOnly)
	}
	if name == "" {
		return nil, fmt.Errorf("%w: stream name must be non-empty", ErrConfig)
	}
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tr, err := New(cfg.Config)
	if err != nil {
		return nil, err
	}
	var sd *shardDur
	if e.dur != nil {
		// The admin lock serializes directory create/remove for a name:
		// without it two racing AddStream("x") calls could both open WAL
		// appenders over the same files before the registry rejects one.
		e.dur.mu.Lock()
		defer e.dur.mu.Unlock()
		if _, err := e.Stream(name); err == nil {
			return nil, fmt.Errorf("%w: %q", ErrStreamExists, name)
		}
		sd, err = e.dur.createStream(name, cfg)
		if err != nil {
			// Clear any partially created directory: a config file without
			// a live stream would resurrect a ghost stream on recovery.
			e.dur.removeStream(name)
			return nil, err
		}
	}
	s, err := e.addShard(name, cfg, tr, sd)
	if err != nil {
		if sd != nil {
			sd.wal.Close()
			e.dur.removeStream(name)
		}
		return nil, err
	}
	return &Stream{sh: s}, nil
}

// Stream returns a handle to the named stream. The handle pins the
// shard, so its methods skip the per-call registry lookup the name-keyed
// Engine methods pay; hold it for the lifetime of your use of the
// stream. A handle outlives RemoveStream gracefully: snapshot reads keep
// serving the last published state, while ingestion and control calls
// return ErrStreamStopped.
func (e *Engine) Stream(name string) (*Stream, error) {
	s, err := e.shard(name)
	if err != nil {
		return nil, err
	}
	return &Stream{sh: s}, nil
}

// addShard wires a tracker (fresh or restored) into the engine. sd — the
// stream's WAL and checkpointer attachment — is nil on an in-memory
// engine.
func (e *Engine) addShard(name string, cfg StreamConfig, tr *Tracker, sd *shardDur) (*shard, error) {
	s := &shard{
		eng:   e,
		name:  name,
		cfg:   cfg,
		tr:    tr,
		mb:    engine.NewMailbox(cfg.MailboxCapacity, cfg.Backpressure.policy(), func(m shardMsg) bool { return m.op == opBatch || m.bestEffort }),
		stats: metrics.NewShardStats(),
		dur:   sd,
	}
	if cfg.RateLimit > 0 {
		s.limiter = engine.NewTokenBucket(cfg.RateLimit, cfg.RateBurst)
		s.adm = &metrics.AdmissionStats{}
	}
	if sd != nil {
		sd.applied.Store(sd.wal.NextLSN())
		go sd.run()
	}
	// Fully initialize — initial snapshot, writer goroutine — before the
	// shard becomes reachable, so a concurrent Snapshot never loads a nil
	// snapshot and a concurrent Close never waits on a nil done channel.
	s.publish()
	s.done = engine.Loop(s.mb, s.handle, s.finish)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		s.stop()
		return nil, ErrEngineClosed
	}
	if _, dup := e.shards[name]; dup {
		e.mu.Unlock()
		s.stop()
		return nil, fmt.Errorf("%w: %q", ErrStreamExists, name)
	}
	e.shards[name] = s
	e.mu.Unlock()
	return s, nil
}

// stop shuts the shard's writer down and waits for it to drain.
func (s *shard) stop() {
	s.mb.Close()
	<-s.done
}

// RemoveStream closes a stream's mailbox, waits for its writer to drain,
// and forgets it. Held handles see ErrStreamStopped from then on; their
// snapshot reads keep serving the stream's last published state. On a
// durable engine the stream's on-disk state (WAL and checkpoints) is
// deleted — removal is permanent, not a shutdown.
func (e *Engine) RemoveStream(name string) error {
	if e.follower != nil {
		return fmt.Errorf("%w: streams are defined on the leader", ErrReadOnly)
	}
	return e.dropStream(name)
}

// dropStream is RemoveStream without the follower guard — the follower's
// reconciler uses it to retire streams the leader deleted.
func (e *Engine) dropStream(name string) error {
	if e.dur != nil {
		e.dur.mu.Lock()
		defer e.dur.mu.Unlock()
	}
	e.mu.Lock()
	s, ok := e.shards[name]
	if ok {
		delete(e.shards, name)
	}
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrStreamNotFound, name)
	}
	s.stop()
	if e.dur != nil {
		if err := e.dur.removeStream(name); err != nil {
			return fmt.Errorf("slicenstitch: remove stream %q data: %w", name, err)
		}
	}
	return nil
}

// Streams lists the registered stream names in sorted (ascending
// lexicographic) order. The ordering is part of the API contract:
// repeated calls over an unchanged engine return identical slices, so
// listings (and the HTTP GET /v1/streams endpoint built on this) are
// deterministic.
func (e *Engine) Streams() []string {
	e.mu.RLock()
	names := make([]string, 0, len(e.shards))
	for n := range e.shards {
		names = append(names, n)
	}
	e.mu.RUnlock()
	sort.Strings(names)
	return names
}

func (e *Engine) shard(name string) (*shard, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	s, ok := e.shards[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrStreamNotFound, name)
	}
	return s, nil
}

// isClosed reports whether Close/Shutdown ran.
func (e *Engine) isClosed() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.closed
}

// goneErr explains a closed mailbox: the whole engine shut down, or just
// this stream was stopped.
func (s *shard) goneErr() error {
	if s.eng.isClosed() {
		return ErrEngineClosed
	}
	return fmt.Errorf("%w: %q", ErrStreamStopped, s.name)
}

// PushBatch queues events for asynchronous ingestion on the named stream.
// The engine takes ownership of the slice. Under BackpressureError a full
// mailbox returns an error wrapping ErrBackpressure; under
// BackpressureBlock a blocked put honors ctx cancellation. Per-event
// validation errors are reported via the snapshot, not here.
func (e *Engine) PushBatch(ctx context.Context, name string, events []Event) error {
	s, err := e.shard(name)
	if err != nil {
		return err
	}
	return (&Stream{sh: s}).PushBatch(ctx, events)
}

// Push queues a single event (a one-element PushBatch).
func (e *Engine) Push(ctx context.Context, name string, coord []int, value float64, tm int64) error {
	return e.PushBatch(ctx, name, []Event{{Coord: coord, Value: value, Time: tm}})
}

// control runs an op on the shard's writer goroutine and waits for its
// reply, honoring ctx both while queueing and while waiting. Control
// messages always block for mailbox space (never dropped, never rejected)
// so they stay ordered after previously queued batches. Cancellation
// abandons the wait, not the operation: a control message already queued
// is still executed by the writer.
func (s *shard) control(ctx context.Context, msg shardMsg) error {
	msg.done = make(chan error, 1) // buffered: the writer never blocks answering an abandoned op
	if err := s.mb.PutBlockingCtx(ctx, msg); err != nil {
		if err == engine.ErrClosed {
			return s.goneErr()
		}
		return err
	}
	select {
	case err := <-msg.done:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Start warm-starts the named stream's tracker (ALS on the window built
// from everything queued before the call) and switches it online. It
// waits for the warm start to finish.
func (e *Engine) Start(ctx context.Context, name string) error {
	s, err := e.shard(name)
	if err != nil {
		return err
	}
	return (&Stream{sh: s}).Start(ctx)
}

// AdvanceTo moves the named stream's clock forward without a tuple,
// after all previously queued batches.
func (e *Engine) AdvanceTo(ctx context.Context, name string, tm int64) error {
	s, err := e.shard(name)
	if err != nil {
		return err
	}
	return (&Stream{sh: s}).AdvanceTo(ctx, tm)
}

// Flush blocks until every batch queued before the call has been applied,
// then publishes a fresh snapshot.
func (e *Engine) Flush(ctx context.Context, name string) error {
	s, err := e.shard(name)
	if err != nil {
		return err
	}
	return s.control(ctx, shardMsg{op: opFlush})
}

// FlushAll flushes every stream, stopping at the first error (including
// ctx cancellation).
func (e *Engine) FlushAll(ctx context.Context) error {
	for _, name := range e.Streams() {
		if err := e.Flush(ctx, name); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns the named stream's current published view, with live
// queue counters stamped in. It is wait-free with respect to the shard
// writer. Model fields (Fitness, Factors) are at most PublishEvery
// events stale.
func (e *Engine) Snapshot(name string) (Snapshot, error) {
	s, err := e.shard(name)
	if err != nil {
		return Snapshot{}, err
	}
	return s.read(), nil
}

// Predict evaluates this snapshot's model at categorical coordinates and
// a time-mode index in [0, W). Unlike Stream.Predict — which reloads the
// latest published snapshot on every call — all Predict calls on one
// Snapshot value are answered from the same model version, which is what
// batch-serving paths need for internally consistent responses. Returns
// ErrNotStarted before the warm start and a *CoordError for invalid
// indices.
func (s *Snapshot) Predict(coord []int, timeIdx int) (float64, error) {
	if s.Factors == nil {
		return 0, ErrNotStarted
	}
	if err := checkIndex(s.Dims, s.W, coord, timeIdx); err != nil {
		return 0, err
	}
	return s.Factors.PredictAt(coord, timeIdx), nil
}

// read copies the published snapshot and stamps the live queue counters.
// The top-level counters are taken from the same Report as Stats so the
// two views of one response always agree.
func (s *shard) read() Snapshot {
	snap := *s.pub.Load() // publish happens before the shard is reachable
	snap.Stats = s.stats.Report()
	snap.Ingested = snap.Stats.Ingested
	snap.IngestErrors = snap.Stats.Errors
	snap.Dropped = s.mb.Dropped()
	snap.QueueDepth = s.mb.Len()
	snap.QueueCap = s.mb.Cap()
	// The mailbox view is mirrored into Stats so the stats sub-object of
	// one status response is self-contained (and /metrics can render from
	// a ShardReport alone).
	snap.Stats.Dropped = snap.Dropped
	snap.Stats.QueueDepth = snap.QueueDepth
	snap.Stats.QueueCap = snap.QueueCap
	snap.Backpressure = s.cfg.Backpressure.String()
	// Background-checkpointer failures are stamped at read time (the
	// checkpointer cannot publish); writer-side WAL failures arrive via
	// the published snapshot.
	if snap.DurabilityError == "" && s.dur != nil {
		if err := s.dur.ckptErr.get(); err != nil {
			snap.DurabilityError = err.Error()
		}
	}
	if s.dur != nil {
		snap.AppliedLSN = s.dur.applied.Load()
		snap.WALOldestLSN = s.dur.wal.OldestLSN()
		snap.WALNextLSN = s.dur.wal.FlushedLSN()
	}
	if rs := s.repl.Load(); rs != nil {
		r := rs.Report()
		snap.Replication = &r
	}
	snap.Admission = s.admissionReport()
	return snap
}

// admissionReport assembles the stream's admission view — counters from
// the stats recorder, configuration and live fill from the bucket — or
// nil for an unlimited stream.
func (s *shard) admissionReport() *metrics.AdmissionReport {
	if s.limiter == nil {
		return nil
	}
	r := s.adm.Report()
	r.RateLimit = s.limiter.Rate()
	r.Burst = s.limiter.Burst()
	r.Tokens = s.limiter.Fill()
	return &r
}

// Predict evaluates the named stream's published model at categorical
// coordinates and a time-mode index in [0, W). Like Snapshot it is
// wait-free and reflects the last published factors. Before the warm
// start it returns ErrNotStarted.
func (e *Engine) Predict(name string, coord []int, timeIdx int) (float64, error) {
	s, err := e.shard(name)
	if err != nil {
		return 0, err
	}
	return (&Stream{sh: s}).Predict(coord, timeIdx)
}

// Observed returns the named stream's live window entry at categorical
// coordinates and a time-mode index. Unlike Predict it must consult the
// writer's window, so it travels through the mailbox and waits behind
// previously queued batches; bound that wait with a context deadline —
// see Stream.Observed for the full bounded-read contract
// (ErrObservedUnavailable on a full mailbox, ctx.Err() at the deadline,
// reads shed before data under DropOldest).
func (e *Engine) Observed(ctx context.Context, name string, coord []int, timeIdx int) (float64, error) {
	s, err := e.shard(name)
	if err != nil {
		return 0, err
	}
	return (&Stream{sh: s}).Observed(ctx, coord, timeIdx)
}

// Shutdown shuts every stream down: mailboxes stop accepting work,
// queued batches are drained, writers exit. It returns ctx.Err() if the
// context expires first — the writers keep draining in the background,
// but the engine is already unusable. The engine cannot be reused.
func (e *Engine) Shutdown(ctx context.Context) error {
	if e.follower != nil {
		// Stop the tailers before closing mailboxes: an in-flight apply
		// finishes (the writers are still draining), new ones stop coming.
		e.follower.stop()
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	shards := make([]*shard, 0, len(e.shards))
	for _, s := range e.shards {
		shards = append(shards, s)
	}
	e.shards = map[string]*shard{}
	e.mu.Unlock()
	for _, s := range shards {
		s.mb.Close()
	}
	for _, s := range shards {
		select {
		case <-s.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Close is Shutdown without a deadline: it waits for every writer to
// drain. Idempotent.
//
//lint:ignore ctxfirst Close satisfies io.Closer, which has no context; Shutdown is the context-first form
func (e *Engine) Close() error { return e.Shutdown(context.Background()) }

// handle runs on the shard's writer goroutine — the only place s.tr is
// touched after spawn.
//
// On a durable engine every state-changing message is appended to the
// shard's WAL before it is applied (write-ahead with respect to both the
// tracker and any checkpoint capture, which also happen on this
// goroutine). The append goes into a writer-owned buffer — no lock, no
// syscall, no allocation in steady state — and reaches the OS at group-
// commit points: when the mailbox runs dry (end of a drain burst) and
// before any control acknowledgement, with fsync per the configured
// policy.
// handleBatch is the data-plane path of the writer loop: one mailbox
// batch logged, applied, and accounted. Split from handle so the 0-alloc
// contract is scoped to the path that runs per batch, not the per-stream
// control ops.
//
//sns:hotpath
//sns:writer
func (s *shard) handleBatch(msg shardMsg) {
	if s.dur != nil {
		// Timed so the /metrics WAL-append histogram reflects what the
		// hot path actually pays (buffer encode + copy, occasionally a
		// flush); two clock reads and a histogram record, 0 allocs.
		walStart := time.Now()
		s.logBatch(msg.batch)
		s.dur.walStats.Append.Record(time.Since(walStart))
	}
	// The batch fast path: one Tracker.PushBatch call validates and
	// applies the whole batch — no per-event closure, coord copy, or
	// repeated dispatch — and is allocation-free in steady state.
	start := time.Now()
	applied, err := s.tr.PushBatch(msg.batch)
	s.stats.RecordBatch(applied, time.Since(start))
	errs := countRejects(err)
	s.lastBatchRejected = errs
	if errs > 0 {
		s.stats.RecordErrors(errs)
		s.errsSince += errs
		s.lastErr = lastReject(err).Error()
	}
	s.maybeCommit()
	s.noteApplied()
	//lint:ignore hotpath amortized: one checkpoint serialization per CheckpointEvery applied events
	s.maybeCheckpoint(applied)
	// Only applied events advance the publish clock: a stream of
	// rejected events must not trigger the O(nnz) fitness recompute.
	s.sincePublish += applied
	if s.sincePublish >= s.cfg.PublishEvery {
		//lint:ignore hotpath amortized: one snapshot allocation per PublishEvery applied events
		s.publish()
	} else if errs > 0 || s.pub.Load().LastBatchRejected != errs {
		// No model publish is due, but the error state must still
		// surface — otherwise a stream whose events are all rejected
		// would never report LastError at all, and a clean batch after
		// a bad one would keep advertising the stale LastBatchRejected
		// until the next full publish. O(1): model fields are
		// inherited.
		s.publishErrState()
	}
}

//sns:writer
func (s *shard) handle(msg shardMsg) {
	switch msg.op {
	case opBatch:
		s.handleBatch(msg)
	case opStart:
		s.logRecord([]byte{recStart})
		err := s.tr.Start()
		s.commit()
		s.noteApplied()
		if err == nil {
			s.publish()
		}
		msg.done <- err
	case opAdvance:
		if s.dur != nil {
			s.logRecord(appendZigzag(append(s.dur.buf[:0], recAdvance), msg.tm))
		}
		err := s.tr.AdvanceTo(msg.tm)
		s.commit()
		s.noteApplied()
		if err == nil {
			s.publish()
		} else {
			// Surfaced synchronously to the caller; not counted in
			// ErrorsSincePublish, which tracks rejected *events* only.
			s.lastErr = err.Error()
		}
		msg.done <- err
	case opFlush:
		// Flush doubles as the durability barrier: everything applied so
		// far is forced to stable storage regardless of fsync policy, and
		// a failed (or already-latched-broken) barrier is an error — a
		// nil reply here is a durability promise.
		var ferr error
		if s.dur != nil && !s.dur.crashed.Load() {
			if s.walErr == nil {
				if err := s.dur.wal.Sync(); err != nil {
					s.walErr = err
				}
			}
			if s.walErr != nil {
				ferr = fmt.Errorf("%w: %v", ErrDurability, s.walErr)
			}
		}
		s.publish()
		msg.done <- ferr
	case opCheckpoint:
		if msg.lsn != nil {
			*msg.lsn = s.nextLSN()
		}
		msg.done <- s.tr.Checkpoint(msg.w)
	case opObserved:
		v, err := s.tr.Observed(msg.coord, msg.idx)
		*msg.val = v
		msg.done <- err
	case opReplApply:
		msg.done <- s.applyRepl(msg.first, msg.recs)
	}
}

// applyRepl appends and applies one replication chunk — raw WAL record
// payloads shipped from the leader. Each record is applied through the
// same decode path recovery uses and appended byte-for-byte to the local
// WAL, so a restarted follower replays to the identical state and
// checkpoint bytes stay a pure function of (leader history, LSN): the
// bit-identity guarantee. The chunk must abut the local WAL exactly;
// anything else is a gap the tailer answers by re-bootstrapping.
//
//sns:writer
func (s *shard) applyRepl(first uint64, recs [][]byte) error {
	if s.dur == nil {
		return fmt.Errorf("%w: replication requires a durable stream", ErrConfig)
	}
	if s.walErr != nil {
		return fmt.Errorf("%w: %v", ErrDurability, s.walErr)
	}
	if got := s.dur.wal.NextLSN(); got != first {
		return fmt.Errorf("%w: chunk starts at LSN %d, local WAL at %d", ErrWALGap, first, got)
	}
	applied := 0
	forcePublish := false
	start := time.Now()
	for _, rec := range recs {
		// Decode-and-apply before append: a record the apply path rejects
		// as malformed must never enter the local WAL, where it would
		// poison recovery. The reverse crash window (applied in memory,
		// not yet appended) is safe — the tracker state is volatile and
		// the tailer resumes from the flushed WAL position.
		n, err := applyRecord(s.tr, rec)
		if err != nil {
			s.commit()
			return err
		}
		applied += n
		// Start/advance records publish unconditionally on the leader
		// (they change Started/window state without counting as events),
		// so the replica must republish too or its snapshot goes stale.
		if rec[0] != recBatch {
			forcePublish = true
		}
		s.logRecord(rec)
		if s.walErr != nil {
			break
		}
	}
	s.commit()
	s.stats.RecordBatch(applied, time.Since(start))
	if s.walErr != nil {
		return fmt.Errorf("%w: %v", ErrDurability, s.walErr)
	}
	s.noteApplied()
	s.maybeCheckpoint(applied)
	s.sincePublish += applied
	if forcePublish || s.sincePublish >= s.cfg.PublishEvery {
		s.publish()
	}
	return nil
}

// noteApplied mirrors the WAL position just past the last applied record
// into the shard's atomic, where Snapshot and the replication protocol
// read it wait-free.
//
//sns:writer
func (s *shard) noteApplied() {
	if s.dur != nil {
		s.dur.applied.Store(s.dur.wal.NextLSN())
	}
}

// nextLSN returns the shard's WAL position (0 when not durable). Writer
// goroutine only.
//
//sns:writer
func (s *shard) nextLSN() uint64 {
	if s.dur == nil {
		return 0
	}
	return s.dur.wal.NextLSN()
}

// logBatch appends a batch record, encoding into the shard's reusable
// scratch. Writer goroutine only; no-op when not durable.
//
//sns:writer
func (s *shard) logBatch(events []Event) {
	if s.dur == nil {
		return
	}
	s.dur.buf = encodeBatchRecord(s.dur.buf, events)
	s.logRecord(s.dur.buf)
}

// durActive reports whether the shard should keep touching its WAL:
// durability configured, no latched failure, and no simulated crash in
// progress (the crash flag freezes the on-disk state mid-flight, which
// is the whole point of the simulation).
func (s *shard) durActive() bool {
	return s.dur != nil && s.walErr == nil && !s.dur.crashed.Load()
}

// logRecord appends one encoded record, latching the first failure:
// after a WAL error the shard keeps serving from memory but stops
// appending (the log's tail position no longer matches the applied
// state), and the error is surfaced via Snapshot.DurabilityError.
//
//sns:writer
func (s *shard) logRecord(payload []byte) {
	if !s.durActive() {
		return
	}
	if _, err := s.dur.wal.Append(payload); err != nil {
		s.walErr = err
		s.publishErrState()
	}
}

// maybeCommit group-commits at the end of a mailbox drain burst — and
// also mid-burst whenever the fsync policy says a sync is due, so a
// sustained backlog (mailbox never empty) cannot starve durability:
// under FsyncAlways every batch still commits, and under FsyncInterval
// the interval clock keeps firing even while producers outrun the drain.
//
//sns:writer
func (s *shard) maybeCommit() {
	if !s.durActive() {
		return
	}
	if s.mb.Len() > 0 && !s.dur.wal.SyncDue() {
		return
	}
	s.commit()
}

// commit group-commits before a control acknowledgement, so a successful
// Start/AdvanceTo reply implies the operation (and everything before it)
// has reached the OS — and stable storage under FsyncAlways.
//
//sns:writer
func (s *shard) commit() {
	if !s.durActive() {
		return
	}
	if err := s.dur.wal.Commit(); err != nil {
		s.walErr = err
		s.publishErrState()
	}
}

// maybeCheckpoint captures a background checkpoint once enough events
// have been applied since the last one. The capture — serializing the
// tracker into a fresh buffer, stamped with the WAL position — runs on
// the writer goroutine so it is trivially consistent; the expensive part
// (fsync, rename, WAL truncation) happens on the shard's checkpointer
// goroutine. A busy checkpointer skips the capture and retries after the
// next batch rather than stalling ingestion.
//
//sns:writer
func (s *shard) maybeCheckpoint(applied int) {
	if s.dur == nil {
		return
	}
	s.sinceCkpt += applied
	if s.sinceCkpt < s.dur.opts.CheckpointEvery || !s.durActive() {
		return
	}
	var buf bytes.Buffer
	if err := s.tr.Checkpoint(&buf); err != nil {
		s.dur.ckptErr.set(err)
		s.sinceCkpt = 0
		return
	}
	select {
	case s.dur.ckptC <- ckptReq{lsn: s.dur.wal.NextLSN(), data: buf.Bytes()}:
		s.sinceCkpt = 0
	default:
		// Checkpointer still busy with the previous capture; retry later.
	}
}

// finish runs on the writer goroutine after the mailbox drains: it
// publishes the final snapshot and tears down the durability attachment.
// A clean shutdown captures one last checkpoint first — restart then
// recovers from the checkpoint alone instead of replaying the WAL tail —
// and closes the checkpointer (which may still truncate) before the WAL
// is flushed, synced, and closed. A simulated crash abandons everything
// instead.
//
//sns:writer
func (s *shard) finish() {
	s.publish()
	// Release the tracker's row-solve pool (if any) before durability
	// teardown: the writer goroutine is done applying events, so no
	// solve can be in flight.
	s.tr.Close()
	if s.dur == nil {
		return
	}
	if s.durActive() && s.sinceCkpt > 0 {
		var buf bytes.Buffer
		if err := s.tr.Checkpoint(&buf); err == nil {
			// Blocking send: the checkpointer is alive until ckptC closes,
			// so a pending capture just delays shutdown by one write.
			s.dur.ckptC <- ckptReq{lsn: s.dur.wal.NextLSN(), data: buf.Bytes()}
		}
	}
	close(s.dur.ckptC)
	<-s.dur.ckptDone
	if s.dur.crashed.Load() {
		s.dur.wal.Abandon()
		return
	}
	if err := s.dur.wal.Close(); err != nil && s.walErr == nil {
		s.walErr = err
		s.publishErrState()
	}
}

// publish builds and installs a fresh immutable snapshot. Called from the
// writer goroutine (and once from addShard before the writer starts). The
// per-interval error state (LastError, ErrorsSincePublish) is stamped into
// the snapshot and then reset, so errors age out after one interval
// instead of sticking forever.
//
//sns:writer
func (s *shard) publish() {
	t := s.tr
	snap := &Snapshot{
		Stream:             s.name,
		Now:                t.Now(),
		Started:            t.Started(),
		Events:             t.Events(),
		NNZ:                t.NNZ(),
		Algorithm:          t.AlgorithmName(),
		Params:             t.ParamCount(),
		Dims:               s.cfg.Dims,
		W:                  s.cfg.W,
		Period:             s.cfg.Period,
		LastError:          s.lastErr,
		ErrorsSincePublish: uint64(s.errsSince),
		LastBatchRejected:  s.lastBatchRejected,
		DurabilityError:    s.durErrString(),
	}
	if t.Started() {
		snap.Fitness = t.Fitness()
		snap.Factors = t.Factors()
	}
	s.pub.Publish(snap)
	s.stats.RecordPublish()
	s.sincePublish = 0
	s.errsSince = 0
	s.lastErr = ""
}

// publishErrState refreshes the published snapshot's cheap fields and
// error state without recomputing fitness or re-copying factors (both are
// inherited from the previous snapshot, which is immutable and shared).
// It neither counts as a model publish nor resets the per-interval error
// state — a subsequent full publish still closes the interval.
//
//sns:writer
func (s *shard) publishErrState() {
	snap := *s.pub.Load()
	snap.Now = s.tr.Now()
	snap.Events = s.tr.Events()
	snap.NNZ = s.tr.NNZ()
	snap.LastError = s.lastErr
	snap.ErrorsSincePublish = uint64(s.errsSince)
	snap.LastBatchRejected = s.lastBatchRejected
	snap.DurabilityError = s.durErrString()
	s.pub.Publish(&snap)
}

// durErrString folds the writer-latched WAL error and the background
// checkpointer's latest error into the snapshot field. Writer goroutine
// only (the checkpointer side is read through its own mutex).
//
//sns:writer
func (s *shard) durErrString() string {
	if s.walErr != nil {
		return s.walErr.Error()
	}
	if s.dur != nil {
		if err := s.dur.ckptErr.get(); err != nil {
			return err.Error()
		}
	}
	return ""
}

// Predict evaluates the CP model held in a Factors snapshot at a full
// index (categorical modes first, time mode last). Out-of-range indices
// are the caller's responsibility.
func (f *Factors) Predict(idx []int) float64 {
	if f == nil || len(idx) != len(f.Matrices) {
		return 0
	}
	total := 0.0
	for r := range f.Lambda {
		p := f.Lambda[r]
		for m, i := range idx {
			p *= f.Matrices[m][i][r]
		}
		total += p
	}
	return total
}

// PredictAt evaluates the model at categorical coordinates plus a
// time-mode index without materializing the full index — the
// allocation-free form concurrent read paths use. Out-of-range indices
// are the caller's responsibility.
func (f *Factors) PredictAt(coord []int, timeIdx int) float64 {
	if f == nil || len(coord)+1 != len(f.Matrices) {
		return 0
	}
	timeRows := f.Matrices[len(f.Matrices)-1]
	total := 0.0
	for r := range f.Lambda {
		p := f.Lambda[r] * timeRows[timeIdx][r]
		for m, i := range coord {
			p *= f.Matrices[m][i][r]
		}
		total += p
	}
	return total
}
