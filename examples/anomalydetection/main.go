// Anomalydetection: the paper's Section VI-G application built purely on
// the public API. A crime-report-style stream (community area × incident
// type) is tracked continuously; each arriving report is scored by the
// z-score of its reconstruction error against the live model, so injected
// bursts are flagged the instant they arrive — not at the end of the hour.
//
//	go run ./examples/anomalydetection
package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"slicenstitch"
)

const (
	areas  = 30
	types  = 8
	period = 3600 // hourly tensor units
	w      = 8
	nInect = 6
)

type scored struct {
	time  int64
	coord []int
	z     float64
}

// welford is a streaming mean/variance for the error distribution.
type welford struct {
	n    int
	mean float64
	m2   float64
}

func (w *welford) add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

func (w *welford) z(x float64) float64 {
	if w.n < 2 {
		return 0
	}
	sd := math.Sqrt(w.m2 / float64(w.n))
	if sd == 0 {
		return 0
	}
	return (x - w.mean) / sd
}

func main() {
	tr, err := slicenstitch.New(slicenstitch.Config{
		Dims:   []int{areas, types},
		W:      w,
		Period: period,
		Rank:   6,
		Seed:   5,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(21))
	zipfArea := rand.NewZipf(rng, 1.2, 2, areas-1)
	next := func(t int64) (int64, []int, float64) {
		t += int64(rng.Intn(60)) + 1
		return t, []int{int(zipfArea.Uint64()), rng.Intn(types)}, 1
	}

	// Fill and warm-start.
	t := int64(0)
	for t < w*period {
		var coord []int
		var v float64
		t, coord, v = next(t)
		if err := tr.Push(coord, v, t); err != nil {
			log.Fatal(err)
		}
	}
	if err := tr.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tracking %d×%d crime stream, fitness %.3f\n\n", areas, types, tr.Fitness())

	// Online phase with injected bursts: value 12 ≈ an order of magnitude
	// above a normal report.
	horizon := t + 10*period
	injectAt := map[int64][]int{}
	for i := 0; i < nInect; i++ {
		at := t + int64(rng.Intn(int(horizon-t)))
		injectAt[at] = []int{rng.Intn(areas), rng.Intn(types)}
	}

	var errStats welford
	var detections []scored
	observe := func(tm int64, coord []int, v float64) {
		// Score BEFORE the model absorbs the event: prediction for the
		// newest unit versus the just-updated observation.
		pred, _ := tr.Predict(coord, w-1)
		obs, _ := tr.Observed(coord, w-1)
		_ = v
		e := math.Abs(obs - pred)
		z := errStats.z(e)
		errStats.add(e)
		detections = append(detections, scored{time: tm, coord: append([]int{}, coord...), z: z})
	}

	var injected []scored
	for t < horizon {
		var coord []int
		var v float64
		t, coord, v = next(t)
		// Planted anomaly due at or before this timestamp? A replayed
		// burst can land behind the stream clock; that rejection is a
		// typed ErrStaleTimestamp, so it is skipped by value — never by
		// matching the error text.
		for at, c := range injectAt {
			if at <= t {
				if err := tr.Push(c, 12, at0(at, t)); err != nil {
					if errors.Is(err, slicenstitch.ErrStaleTimestamp) {
						delete(injectAt, at)
						continue
					}
					log.Fatal(err)
				}
				observe(t, c, 12)
				injected = append(injected, scored{time: t, coord: c})
				delete(injectAt, at)
			}
		}
		if err := tr.Push(coord, v, t); err != nil {
			log.Fatal(err)
		}
		observe(t, coord, v)
	}

	sort.Slice(detections, func(i, j int) bool { return detections[i].z > detections[j].z })
	top := detections
	if len(top) > nInect {
		top = top[:nInect]
	}
	fmt.Printf("top-%d anomaly scores:\n", len(top))
	hits := 0
	for _, d := range top {
		mark := ""
		for _, inj := range injected {
			if inj.time == d.time && inj.coord[0] == d.coord[0] && inj.coord[1] == d.coord[1] {
				mark = "  <- injected"
				hits++
				break
			}
		}
		fmt.Printf("  t=%-8d area=%-3d type=%-2d z=%.2f%s\n", d.time, d.coord[0], d.coord[1], d.z, mark)
	}
	fmt.Printf("\nprecision@%d: %.2f (injected %d bursts)\n", len(top), float64(hits)/float64(len(top)), len(injected))
}

// at0 clamps an injection timestamp to be non-decreasing with the stream.
func at0(at, now int64) int64 {
	if at > now {
		return at
	}
	return now
}
