// Hyperparam: the practitioner's guide of Section VI-F as a runnable demo.
// It sweeps the sampling threshold θ and the algorithm choice on the same
// ride-sharing-style stream and prints the fitness/latency trade-off that
// drives the paper's recommendations:
//
//   - prefer SNS-Mat / SNS-Vec+ / SNS-Rnd+ (the stable ones);
//   - pick the most accurate variant that fits the latency budget;
//   - with SNS-Rnd+, raise θ as far as the budget allows.
//
// go run ./examples/hyperparam
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"slicenstitch"
)

const (
	zonesA = 25
	zonesB = 25
	colors = 6
	period = 1440 // daily units, minute ticks
	w      = 5
)

// ride emits (pickup, dropoff, car color) tuples.
func makeStream(seed int64, horizon int64) (times []int64, coords [][]int) {
	rng := rand.New(rand.NewSource(seed))
	za := rand.NewZipf(rng, 1.3, 3, zonesA-1)
	zb := rand.NewZipf(rng, 1.3, 3, zonesB-1)
	t := int64(0)
	for t < horizon {
		t += int64(rng.Intn(4)) + 1
		times = append(times, t)
		coords = append(coords, []int{int(za.Uint64()), int(zb.Uint64()), rng.Intn(colors)})
	}
	return times, coords
}

func run(alg slicenstitch.Algorithm, theta int) (fitness float64, microsPerUpdate float64) {
	horizon := int64((w + 6) * period)
	times, coords := makeStream(9, horizon)

	tr, err := slicenstitch.New(slicenstitch.Config{
		Dims:      []int{zonesA, zonesB, colors},
		W:         w,
		Period:    period,
		Rank:      8,
		Algorithm: alg,
		Theta:     theta,
		Seed:      2,
	})
	if err != nil {
		log.Fatal(err)
	}

	i := 0
	for ; i < len(times) && times[i] <= int64(w*period); i++ {
		if err := tr.Push(coords[i], 1, times[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := tr.Start(); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	// The online phase flows through PushBatch — one call per chunk, the
	// engine's ingestion path. Rejected events (none in this clean sweep)
	// would arrive as errors.Join-ed *RejectError values carrying their
	// batch index, so a real pipeline can retry or drop exactly those.
	const chunk = 512
	batch := make([]slicenstitch.Event, 0, chunk)
	for ; i < len(times); i++ {
		batch = append(batch, slicenstitch.Event{Coord: coords[i], Value: 1, Time: times[i]})
		if len(batch) == chunk || i == len(times)-1 {
			if _, err := tr.PushBatch(batch); err != nil {
				var rej *slicenstitch.RejectError
				if errors.As(err, &rej) {
					log.Fatalf("event %d of batch rejected: %v", rej.Index, rej.Err)
				}
				log.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	elapsed := time.Since(start)
	if tr.Events() == 0 {
		return tr.Fitness(), 0
	}
	return tr.Fitness(), float64(elapsed.Microseconds()) / float64(tr.Events())
}

func main() {
	fmt.Println("algorithm trade-off (ride-sharing-like stream, 4-mode tensor):")
	fmt.Printf("%-10s %-8s %-10s %s\n", "algorithm", "theta", "fitness", "µs/update")
	for _, alg := range []slicenstitch.Algorithm{
		slicenstitch.SNSMat, slicenstitch.SNSVecPlus, slicenstitch.SNSRndPlus,
	} {
		fit, us := run(alg, 20)
		fmt.Printf("%-10s %-8d %-10.3f %.1f\n", alg, 20, fit, us)
	}

	fmt.Println("\nθ sweep for SNS-Rnd+ (fitness rises with diminishing returns,")
	fmt.Println("cost grows roughly linearly — Observation 6):")
	fmt.Printf("%-8s %-10s %s\n", "theta", "fitness", "µs/update")
	for _, theta := range []int{5, 10, 20, 40, 80} {
		fit, us := run(slicenstitch.SNSRndPlus, theta)
		fmt.Printf("%-8d %-10.3f %.1f\n", theta, fit, us)
	}
}
