// Quickstart: track a tiny source×destination traffic stream with
// continuous CP decomposition and read predictions back out.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"slicenstitch"
)

func main() {
	// A 6×6 traffic matrix observed as (source, destination, timestamp)
	// trips; the tensor window covers W=4 units of T=60 seconds each.
	tr, err := slicenstitch.New(slicenstitch.Config{
		Dims:   []int{6, 6},
		W:      4,
		Period: 60,
		Rank:   3,
		Seed:   7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic workload: route 2→4 is persistently hot, everything else
	// is background noise.
	rng := rand.New(rand.NewSource(42))
	emit := func(t int64) (coord []int) {
		if rng.Intn(3) > 0 {
			return []int{2, 4}
		}
		return []int{rng.Intn(6), rng.Intn(6)}
	}

	// Phase 1 — fill the initial window (4 minutes of traffic).
	t := int64(0)
	for ; t < 4*60; t += 2 {
		if err := tr.Push(emit(t), 1, t); err != nil {
			log.Fatal(err)
		}
	}

	// Phase 2 — warm-start the factors with ALS and go online.
	if err := tr.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("went online with %s at t=%ds, fitness %.3f, %d parameters\n",
		tr.AlgorithmName(), tr.Now(), tr.Fitness(), tr.ParamCount())

	// Phase 3 — continuous updates: every push refreshes the factors
	// immediately, no waiting for a period boundary.
	for ; t < 10*60; t += 2 {
		if err := tr.Push(emit(t), 1, t); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("processed %d events, fitness now %.3f\n", tr.Events(), tr.Fitness())

	// Read the model: predicted vs observed traffic in the newest unit.
	newest := 3 // time index W−1
	hot, _ := tr.Predict([]int{2, 4}, newest)
	hotObs, _ := tr.Observed([]int{2, 4}, newest)
	cold, _ := tr.Predict([]int{0, 1}, newest)
	coldObs, _ := tr.Observed([]int{0, 1}, newest)
	fmt.Printf("route 2→4: predicted %.2f observed %.0f\n", hot, hotObs)
	fmt.Printf("route 0→1: predicted %.2f observed %.0f\n", cold, coldObs)

	// Factor matrices are available as plain slices.
	f := tr.Factors()
	fmt.Printf("factors: %d modes, rank %d\n", len(f.Matrices), len(f.Lambda))

	// Every failure is a typed error: branch with errors.Is / errors.As
	// instead of matching message text.
	if err := tr.Push([]int{2, 4}, 1, t-120); errors.Is(err, slicenstitch.ErrStaleTimestamp) {
		fmt.Println("out-of-order event rejected: tuples must arrive chronologically")
	}
	var coordErr *slicenstitch.CoordError
	if err := tr.Push([]int{2, 99}, 1, t); errors.As(err, &coordErr) {
		fmt.Printf("bad coordinate rejected: mode %d index %d exceeds size %d\n",
			coordErr.Mode, coordErr.Got, coordErr.Limit)
	}
}
