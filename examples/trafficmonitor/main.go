// Trafficmonitor: a New-York-Taxi-style continuous monitoring loop — the
// motivating workload of the paper's introduction, built on the
// handle-based client API. Trips arrive every few seconds as (pickup
// zone, dropoff zone) pairs with a daily demand cycle; an engine shard
// maintains an hourly tensor window behind a *slicenstitch.Stream
// handle, hourly trip batches flow through Stream.PushBatch, and the
// monitor reads model quality and the strongest traffic patterns from
// the published snapshot once per simulated hour — no lock shared with
// ingestion, no per-call registry lookup.
//
//	go run ./examples/trafficmonitor
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"slicenstitch"
)

const (
	zones  = 40
	period = 3600 // 1 hour in seconds
	w      = 6    // 6-hour window
	rank   = 8
	hours  = 18 // simulated monitoring horizon after warm-up
)

// city simulates Zipf-popular zones with a sinusoidal daily demand cycle.
type city struct {
	rng  *rand.Rand
	zipf *rand.Zipf
}

func newCity(seed int64) *city {
	rng := rand.New(rand.NewSource(seed))
	return &city{rng: rng, zipf: rand.NewZipf(rng, 1.3, 3, zones-1)}
}

// nextGap returns seconds until the next trip at simulated time t.
func (c *city) nextGap(t int64) int64 {
	phase := 2 * math.Pi * float64(t%86400) / 86400
	rate := 0.8 * (1 + 0.7*math.Sin(phase)) // trips per second
	gap := int64(c.rng.ExpFloat64()/rate) + 1
	return gap
}

func (c *city) trip() []int {
	return []int{int(c.zipf.Uint64()), int(c.zipf.Uint64())}
}

func main() {
	ctx := context.Background()
	e := slicenstitch.NewEngine()
	defer e.Close()
	// AddStream returns the stream handle; every later call goes through
	// it — the registry is never consulted again.
	st, err := e.AddStream("taxi", slicenstitch.StreamConfig{
		Config: slicenstitch.Config{
			Dims:      []int{zones, zones},
			W:         w,
			Period:    period,
			Rank:      rank,
			Algorithm: slicenstitch.SNSRndPlus,
			Theta:     20,
			Seed:      3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	c := newCity(11)
	t := int64(0)
	batch := make([]slicenstitch.Event, 0, 4096)
	flush := func() {
		// The engine takes ownership of the pushed slice, so hand it a
		// copy and reuse the buffer.
		if len(batch) == 0 {
			return
		}
		if err := st.PushBatch(ctx, append([]slicenstitch.Event(nil), batch...)); err != nil {
			log.Fatal(err)
		}
		batch = batch[:0]
	}

	// Warm-up: fill the 6-hour window, then ALS. Start waits for every
	// batch queued before it, so no explicit barrier is needed.
	for t < w*period {
		t += c.nextGap(t)
		batch = append(batch, slicenstitch.Event{Coord: c.trip(), Value: 1, Time: t})
	}
	flush()
	if err := st.Start(ctx); err != nil {
		log.Fatal(err)
	}
	snap := st.Snapshot()
	fmt.Printf("online after warm-up: fitness %.3f, window nnz %d\n\n", snap.Fitness, snap.NNZ)
	fmt.Printf("%-6s %-10s %-10s %-12s %s\n", "hour", "fitness", "nnz", "events", "top pattern (pickup→dropoff strength)")

	horizon := t + hours*period
	nextReport := t + period
	for t < horizon {
		t += c.nextGap(t)
		batch = append(batch, slicenstitch.Event{Coord: c.trip(), Value: 1, Time: t})
		if t >= nextReport {
			// Flush applies the hour's batch and publishes a fresh
			// snapshot, so the report reads exact counters and factors.
			flush()
			if err := st.Flush(ctx); err != nil {
				log.Fatal(err)
			}
			snap := st.Snapshot()
			hour := nextReport / period
			pick, drop, strength := topPattern(snap.Factors)
			fmt.Printf("%-6d %-10.3f %-10d %-12d %d→%d (%.2f)\n",
				hour, snap.Fitness, snap.NNZ, snap.Events, pick, drop, strength)
			nextReport += period
		}
	}
}

// topPattern inspects a published factor snapshot: the dominant rank-1
// component's strongest pickup and dropoff zones, a direct read of what
// CP decomposition "means" on traffic data.
func topPattern(f *slicenstitch.Factors) (pickup, dropoff int, strength float64) {
	// Rank components by the product of their factor column norms.
	r := len(f.Lambda)
	norms := make([]float64, r)
	for k := 0; k < r; k++ {
		p := f.Lambda[k]
		for _, mode := range f.Matrices {
			s := 0.0
			for i := range mode {
				s += mode[i][k] * mode[i][k]
			}
			p *= math.Sqrt(s)
		}
		norms[k] = math.Abs(p)
	}
	order := make([]int, r)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return norms[order[i]] > norms[order[j]] })
	k := order[0]
	pickup = argmaxAbs(f.Matrices[0], k)
	dropoff = argmaxAbs(f.Matrices[1], k)
	strength = norms[k]
	return pickup, dropoff, strength
}

func argmaxAbs(m [][]float64, k int) int {
	best, bestV := 0, math.Inf(-1)
	for i := range m {
		if v := math.Abs(m[i][k]); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
