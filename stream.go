package slicenstitch

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"slicenstitch/internal/engine"
)

// Stream is a handle to one engine stream. It pins the stream's shard at
// construction (AddStream / Engine.Stream), so every method goes straight
// to the shard's mailbox or published snapshot with zero registry
// lookups — the per-call mutex-guarded map access of the name-keyed
// Engine methods is paid once, when the handle is made. Handles are cheap
// value wrappers; hold one per stream for the lifetime of your use.
//
// Concurrency: a Stream is safe for concurrent use by any number of
// goroutines, exactly like the Engine methods it replaces.
//
// Lifetime and revocation: a handle is never invalidated in place. After
// RemoveStream (or engine Shutdown) the shard's mailbox is closed, so
// ingestion and control methods return ErrStreamStopped (ErrEngineClosed
// once the whole engine is down), while Snapshot and Predict keep
// serving the stream's last published state. Check Stopped to poll the
// state explicitly.
//
// Replication: on a follower engine (Options.Follower) the write methods
// — PushBatch, Push, Start, AdvanceTo — return ErrReadOnly; reads,
// Flush, Observed, and Checkpoint work normally against the replicated
// state.
//
// Context semantics: every method that can block — PushBatch and Push
// under BackpressureBlock, and all control operations (Start, AdvanceTo,
// Flush, Observed) — takes a context.Context and returns ctx.Err() when
// it is cancelled while queueing or waiting. Cancellation abandons the
// caller's wait, not the operation: a control message already queued is
// still executed by the writer. Wait-free reads (Snapshot, Predict) take
// no context.
type Stream struct {
	sh *shard
}

// Name returns the stream's registered name.
func (st *Stream) Name() string { return st.sh.name }

// Config returns the stream's effective configuration (defaults applied).
func (st *Stream) Config() StreamConfig { return st.sh.cfg }

// Stopped reports whether the stream was removed from its engine (or the
// engine shut down). A stopped stream still serves Snapshot and Predict
// from its last published state.
func (st *Stream) Stopped() bool { return st.sh.mb.Closed() }

// PushBatch queues events for asynchronous ingestion. The engine takes
// ownership of the slice; don't mutate it afterwards. Under
// BackpressureError a full mailbox returns an error wrapping
// ErrBackpressure; under BackpressureBlock a blocked put unblocks with
// ctx.Err() on cancellation. On a stream with a RateLimit, a batch the
// token bucket cannot admit is refused whole — before the mailbox —
// with a *RateLimitError (wrapping ErrRateLimited) carrying the retry
// wait. Per-event validation errors surface in the snapshot (LastError,
// LastBatchRejected, IngestErrors), not here. The steady-state path is
// allocation-free.
func (st *Stream) PushBatch(ctx context.Context, events []Event) error {
	if st.sh.eng.follower != nil {
		return fmt.Errorf("%w: ingest on %q", ErrReadOnly, st.sh.name)
	}
	if len(events) == 0 {
		return nil
	}
	if lim := st.sh.limiter; lim != nil {
		if ok, retry := lim.Take(float64(len(events))); !ok {
			st.sh.adm.RecordLimited(len(events))
			return &RateLimitError{Stream: st.sh.name, RetryAfter: retry}
		}
		st.sh.adm.RecordAccept(len(events))
	}
	switch err := st.sh.mb.PutCtx(ctx, shardMsg{op: opBatch, batch: events}); err {
	case nil:
		return nil
	case engine.ErrFull:
		return fmt.Errorf("%w: stream %q", ErrBackpressure, st.sh.name)
	case engine.ErrClosed:
		return st.sh.goneErr()
	default:
		return err
	}
}

// Push queues a single event (a one-element PushBatch).
func (st *Stream) Push(ctx context.Context, coord []int, value float64, tm int64) error {
	return st.PushBatch(ctx, []Event{{Coord: coord, Value: value, Time: tm}})
}

// Start warm-starts the stream's tracker (ALS on the window built from
// everything queued before the call) and switches it online. It waits
// for the warm start to finish; a second Start returns
// ErrAlreadyStarted.
func (st *Stream) Start(ctx context.Context) error {
	if st.sh.eng.follower != nil {
		return fmt.Errorf("%w: Start on %q (the leader starts streams; the replica replays it)", ErrReadOnly, st.sh.name)
	}
	return st.sh.control(ctx, shardMsg{op: opStart})
}

// AdvanceTo moves the stream's clock forward without a tuple, after all
// previously queued batches. A timestamp behind the stream clock returns
// an error wrapping ErrStaleTimestamp.
func (st *Stream) AdvanceTo(ctx context.Context, tm int64) error {
	if st.sh.eng.follower != nil {
		return fmt.Errorf("%w: AdvanceTo on %q", ErrReadOnly, st.sh.name)
	}
	return st.sh.control(ctx, shardMsg{op: opAdvance, tm: tm})
}

// Flush blocks until every batch queued before the call has been
// applied, then publishes a fresh snapshot.
func (st *Stream) Flush(ctx context.Context) error {
	return st.sh.control(ctx, shardMsg{op: opFlush})
}

// Snapshot returns the stream's current published view with live queue
// counters stamped in — wait-free with respect to the shard writer.
// Model fields (Fitness, Factors) are at most PublishEvery events stale.
// It keeps working after the stream is stopped, serving the last
// published state.
func (st *Stream) Snapshot() Snapshot { return st.sh.read() }

// Predict evaluates the latest published model at categorical
// coordinates and a time-mode index in [0, W). Wait-free; returns
// ErrNotStarted before the warm start and a *CoordError for invalid
// indices. For many predictions against one consistent model version,
// take a Snapshot once and use Snapshot.Predict.
func (st *Stream) Predict(coord []int, timeIdx int) (float64, error) {
	return st.sh.pub.Load().Predict(coord, timeIdx)
}

// Observed returns the live window entry at categorical coordinates and
// a time-mode index (0 when absent). Unlike Predict it must consult the
// writer's window, so the query travels through the mailbox and waits
// behind previously queued batches — under a backlog that wait can be
// long, so latency-sensitive callers should bound it with a context
// deadline.
//
// Deadline-bounded reads are second-class mailbox citizens by design:
// when ctx carries a deadline the query never blocks for mailbox space,
// always leaves at least one free slot for producers (a full mailbox
// returns ErrObservedUnavailable immediately), and is itself evictable
// under BackpressureDropOldest — so sustained bounded reads against a
// backlogged shard can neither stall nor starve ingestion, and an
// evicted or unanswered query returns ctx.Err() at the deadline. Without
// a deadline the query is a normal control message: it blocks for space
// (cancellably), is never dropped, and is always answered. Either way
// the observation should be treated as unavailable rather than stale on
// error, and the engine briefly retains coord until the writer answers
// (even if the caller has given up), so callers must not mutate it
// afterwards.
func (st *Stream) Observed(ctx context.Context, coord []int, timeIdx int) (float64, error) {
	// Fail fast on bad indices without involving the writer.
	snap := st.sh.pub.Load()
	if err := checkIndex(snap.Dims, snap.W, coord, timeIdx); err != nil {
		return 0, err
	}
	// val lives on the heap: if ctx expires first, the writer still
	// stores the answer into it later, unobserved — never into a stack
	// frame that has been reused.
	val := new(float64)
	msg := shardMsg{op: opObserved, coord: coord, idx: timeIdx, val: val}
	if _, bounded := ctx.Deadline(); !bounded {
		if err := st.sh.control(ctx, msg); err != nil {
			return 0, err
		}
		return *val, nil
	}
	// Bounded read: shed rather than stall. The deadline guarantees the
	// wait below terminates even if the queued query is evicted.
	msg.done = make(chan error, 1) // buffered: the writer never blocks answering an abandoned query
	msg.bestEffort = true
	switch err := st.sh.mb.TryPut(msg, 1); err {
	case nil:
	case engine.ErrFull:
		return 0, fmt.Errorf("%w: stream %q", ErrObservedUnavailable, st.sh.name)
	case engine.ErrClosed:
		return 0, st.sh.goneErr()
	default:
		return 0, err
	}
	select {
	case err := <-msg.done:
		if err != nil {
			return 0, err
		}
		return *val, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// Checkpoint serializes the stream's tracker state on its writer
// goroutine, after all batches queued before the call. It is the
// single-stream form of Engine.Checkpoint. The state is staged in an
// engine-owned buffer and copied to w only on success, so a cancelled
// call never touches w afterwards — w needs no special lifetime.
func (st *Stream) Checkpoint(ctx context.Context, w io.Writer) error {
	// The writer goroutine encodes into buf; if ctx expires first the
	// abandoned op writes into the abandoned buffer, never into w.
	var buf bytes.Buffer
	if err := st.sh.control(ctx, shardMsg{op: opCheckpoint, w: &buf}); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}
