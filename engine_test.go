package slicenstitch

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// bg is the no-deadline context the package tests thread through blocking
// engine calls.
var bg = context.Background()

func validStreamConfig() StreamConfig {
	return StreamConfig{Config: validConfig()}
}

// fillAndStart pushes enough events to cover the initial window and
// warm-starts the named stream. Returns the last stream time used.
func fillAndStart(t testing.TB, e *Engine, name string, seed int64) int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	events := make([]Event, 0, 64)
	tm := int64(0)
	for i := 0; i < 50; i++ {
		tm += int64(rng.Intn(2))
		events = append(events, Event{Coord: []int{rng.Intn(5), rng.Intn(4)}, Value: 1, Time: tm})
	}
	if err := e.PushBatch(bg, name, events); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(bg, name); err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestEngineLifecycle(t *testing.T) {
	e := NewEngine()
	defer e.Close()

	if _, err := e.AddStream("", validStreamConfig()); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := e.AddStream("taxi", StreamConfig{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	st, err := e.AddStream("taxi", validStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.Name() != "taxi" {
		t.Fatalf("AddStream handle = %+v", st)
	}
	if _, err := e.AddStream("taxi", validStreamConfig()); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := e.AddStream("bikes", validStreamConfig()); err != nil {
		t.Fatal(err)
	}
	if got := e.Streams(); len(got) != 2 || got[0] != "bikes" || got[1] != "taxi" {
		t.Fatalf("Streams = %v", got)
	}

	if _, err := e.Snapshot("nope"); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("Snapshot(unknown) err = %v", err)
	}
	if _, err := e.Stream("nope"); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("Stream(unknown) err = %v", err)
	}
	if err := e.PushBatch(bg, "nope", []Event{{Coord: []int{0, 0}, Value: 1}}); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("PushBatch(unknown) err = %v", err)
	}

	tm := fillAndStart(t, e, "taxi", 1)
	snap, err := e.Snapshot("taxi")
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Started || snap.Ingested != 50 || snap.NNZ == 0 || snap.Factors == nil {
		t.Fatalf("post-start snapshot: %+v", snap)
	}
	if snap.Stream != "taxi" || snap.W != 3 || len(snap.Dims) != 2 {
		t.Fatalf("snapshot identity: %+v", snap)
	}

	// The other stream is independent and still offline.
	if snap2, _ := e.Snapshot("bikes"); snap2.Started {
		t.Fatal("bikes started by taxi's Start")
	}

	if _, err := e.Predict("taxi", []int{1, 1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Predict("taxi", []int{1}, 0); err == nil {
		t.Fatal("short coord accepted")
	}
	if _, err := e.Predict("bikes", []int{1, 1}, 0); !errors.Is(err, ErrNotStarted) {
		t.Fatalf("Predict before Start err = %v", err)
	}

	if err := e.AdvanceTo(bg, "taxi", tm+20); err != nil {
		t.Fatal(err)
	}
	if snap, _ = e.Snapshot("taxi"); snap.Now != tm+20 {
		t.Fatalf("Now = %d, want %d", snap.Now, tm+20)
	}

	if err := e.RemoveStream("taxi"); err != nil {
		t.Fatal(err)
	}
	if err := e.RemoveStream("taxi"); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("second remove err = %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	if _, err := e.Snapshot("bikes"); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Snapshot after Close err = %v", err)
	}
	if _, err := e.AddStream("late", validStreamConfig()); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("AddStream after Close err = %v", err)
	}
}

// Streams must list names in sorted order regardless of insertion order —
// the documented determinism guarantee behind GET /v1/streams.
func TestEngineStreamsSorted(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	names := []string{"zebra", "alpha", "mid", "beta", "omega"}
	for _, n := range names {
		if _, err := e.AddStream(n, validStreamConfig()); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"alpha", "beta", "mid", "omega", "zebra"}
	for i := 0; i < 5; i++ { // repeated calls must agree exactly
		got := e.Streams()
		if len(got) != len(want) {
			t.Fatalf("Streams = %v", got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("Streams = %v, want %v", got, want)
			}
		}
	}
}

// stallWriter occupies the shard writer long enough for subsequent puts to
// pile up in the mailbox: one big batch is dequeued immediately and chewed
// through while the test floods the queue behind it.
func stallWriter(t testing.TB, e *Engine, name string, tm int64) {
	t.Helper()
	heavy := make([]Event, 20000)
	for i := range heavy {
		heavy[i] = Event{Coord: []int{i % 5, i % 4}, Value: 1, Time: tm}
	}
	if err := e.PushBatch(bg, name, heavy); err != nil {
		t.Fatal(err)
	}
}

func TestEngineBackpressureError(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	cfg := validStreamConfig()
	cfg.MailboxCapacity = 1
	cfg.Backpressure = BackpressureError
	if _, err := e.AddStream("s", cfg); err != nil {
		t.Fatal(err)
	}
	tm := fillAndStart(t, e, "s", 3)
	stallWriter(t, e, "s", tm)

	var got error
	for i := 0; i < 10000; i++ {
		if err := e.PushBatch(bg, "s", []Event{{Coord: []int{0, 0}, Value: 1, Time: tm}}); err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, ErrBackpressure) {
		t.Fatalf("flooding a capacity-1 mailbox under BackpressureError: err = %v", got)
	}
	// Control messages still get through (blocking put) and drain the queue.
	if err := e.Flush(bg, "s"); err != nil {
		t.Fatal(err)
	}
}

func TestEngineBackpressureDropOldest(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	cfg := validStreamConfig()
	cfg.MailboxCapacity = 1
	cfg.Backpressure = BackpressureDropOldest
	if _, err := e.AddStream("s", cfg); err != nil {
		t.Fatal(err)
	}
	tm := fillAndStart(t, e, "s", 4)
	stallWriter(t, e, "s", tm)

	for i := 0; i < 1000; i++ {
		if err := e.PushBatch(bg, "s", []Event{{Coord: []int{0, 0}, Value: 1, Time: tm}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(bg, "s"); err != nil {
		t.Fatal(err)
	}
	snap, err := e.Snapshot("s")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Dropped == 0 {
		t.Fatal("no batches dropped despite capacity-1 mailbox flood")
	}
	if snap.Backpressure != "drop-oldest" {
		t.Fatalf("Backpressure = %q", snap.Backpressure)
	}
}

func TestEngineObserved(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	if _, err := e.AddStream("s", validStreamConfig()); err != nil {
		t.Fatal(err)
	}
	tm := fillAndStart(t, e, "s", 7)
	if err := e.Push(bg, "s", []int{2, 3}, 7, tm); err != nil {
		t.Fatal(err)
	}
	// Observed is a control op: it queues behind the push above, so no
	// explicit Flush is needed for it to see the event.
	v, err := e.Observed(bg, "s", []int{2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v < 7 {
		t.Fatalf("Observed = %v, want >= 7", v)
	}
	if _, err := e.Observed(bg, "s", []int{99, 0}, 0); err == nil {
		t.Fatal("bad coord accepted")
	}
	if _, err := e.Observed(bg, "nope", []int{0, 0}, 0); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("Observed(unknown) err = %v", err)
	}
}

func TestEngineIngestErrorsSurfaceInSnapshot(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	if _, err := e.AddStream("s", validStreamConfig()); err != nil {
		t.Fatal(err)
	}
	// PushBatch accepts the batch; the out-of-range coordinate is rejected
	// by the writer and surfaces via the snapshot, not the call.
	if err := e.PushBatch(bg, "s", []Event{
		{Coord: []int{0, 0}, Value: 1, Time: 0},
		{Coord: []int{99, 0}, Value: 1, Time: 0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(bg, "s"); err != nil {
		t.Fatal(err)
	}
	snap, _ := e.Snapshot("s")
	if snap.IngestErrors != 1 || snap.Ingested != 1 {
		t.Fatalf("errors = %d ingested = %d, want 1 and 1", snap.IngestErrors, snap.Ingested)
	}
	if snap.LastError == "" {
		t.Fatal("LastError empty after rejected event")
	}
	if snap.ErrorsSincePublish != 1 {
		t.Fatalf("ErrorsSincePublish = %d, want 1", snap.ErrorsSincePublish)
	}
	if snap.LastBatchRejected != 1 {
		t.Fatalf("LastBatchRejected = %d, want 1", snap.LastBatchRejected)
	}
	// The error belongs to the interval that saw it: after a healthy
	// interval the next publish clears it instead of reporting the stale
	// error forever.
	if err := e.PushBatch(bg, "s", []Event{{Coord: []int{0, 0}, Value: 1, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(bg, "s"); err != nil {
		t.Fatal(err)
	}
	snap, _ = e.Snapshot("s")
	if snap.LastError != "" || snap.ErrorsSincePublish != 0 {
		t.Fatalf("error state not aged out: lastError=%q errorsSincePublish=%d",
			snap.LastError, snap.ErrorsSincePublish)
	}
	// A clean batch resets the per-batch rejection count.
	if snap.LastBatchRejected != 0 {
		t.Fatalf("LastBatchRejected = %d after clean batch, want 0", snap.LastBatchRejected)
	}
	// The lifetime counter keeps the history.
	if snap.IngestErrors != 1 || snap.Ingested != 2 {
		t.Fatalf("lifetime errors = %d ingested = %d, want 1 and 2", snap.IngestErrors, snap.Ingested)
	}
}

// Rejected events must not advance the publish clock: a batch of pure
// garbage never triggers the O(nnz) fitness recompute, while the same
// number of applied events does.
func TestEngineRejectedEventsDoNotCountTowardPublish(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	cfg := validStreamConfig()
	cfg.PublishEvery = 4
	if _, err := e.AddStream("s", cfg); err != nil {
		t.Fatal(err)
	}
	base, _ := e.Snapshot("s")
	basePub := base.Stats.Publishes
	// Three batches of all-rejected events: 12 events ≥ PublishEvery, yet
	// no publish may fire.
	for i := 0; i < 3; i++ {
		bad := []Event{
			{Coord: []int{99, 0}, Value: 1, Time: 0},
			{Coord: []int{99, 0}, Value: 1, Time: 0},
			{Coord: []int{99, 0}, Value: 1, Time: 0},
			{Coord: []int{99, 0}, Value: 1, Time: 0},
		}
		if err := e.PushBatch(bg, "s", bad); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, e, "s")
	snap := mustSnap(t, e, "s")
	if got := snap.Stats.Publishes; got != basePub {
		t.Fatalf("all-error batches triggered %d publishes", got-basePub)
	}
	// … yet the error state still surfaces (cheap error-state refresh, not
	// a model publish), even though no event was ever applied.
	if snap.LastError == "" || snap.ErrorsSincePublish != 12 {
		t.Fatalf("all-error stream hides its errors: lastError=%q errorsSincePublish=%d",
			snap.LastError, snap.ErrorsSincePublish)
	}
	if snap.LastBatchRejected != 4 {
		t.Fatalf("LastBatchRejected = %d, want 4", snap.LastBatchRejected)
	}
	// A clean batch too small to trigger a publish still clears the
	// per-batch rejection count via the cheap error-state refresh — the
	// stale 4 must not stick around until the next full publish.
	if err := e.PushBatch(bg, "s", []Event{{Coord: []int{0, 0}, Value: 1, Time: 0}}); err != nil {
		t.Fatal(err)
	}
	drain(t, e, "s")
	snap = mustSnap(t, e, "s")
	if snap.Stats.Publishes != basePub {
		t.Fatalf("small clean batch triggered a model publish")
	}
	if snap.LastBatchRejected != 0 {
		t.Fatalf("LastBatchRejected = %d after clean batch, want 0", snap.LastBatchRejected)
	}
	// The same volume of applied events does publish.
	good := make([]Event, 4)
	for i := range good {
		good[i] = Event{Coord: []int{0, 0}, Value: 1, Time: int64(i)}
	}
	if err := e.PushBatch(bg, "s", good); err != nil {
		t.Fatal(err)
	}
	drain(t, e, "s")
	if got := mustSnap(t, e, "s").Stats.Publishes; got <= basePub {
		t.Fatal("applied events did not trigger a publish")
	}
}

// drain waits until the shard's queue is empty and the writer idle,
// without forcing a publish the way Flush does.
func drain(t *testing.T, e *Engine, name string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap := mustSnap(t, e, name)
		if snap.QueueDepth == 0 {
			// One control round-trip guarantees the in-flight batch (if
			// any) finished before we read counters. Observed is the only
			// control op that does not publish.
			if _, err := e.Observed(bg, name, []int{0, 0}, 0); err != nil {
				t.Fatal(err)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("queue never drained")
}

func mustSnap(t *testing.T, e *Engine, name string) Snapshot {
	t.Helper()
	snap, err := e.Snapshot(name)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestEngineCheckpointRestore(t *testing.T) {
	e := NewEngine()
	defer e.Close()
	cfgA := validStreamConfig()
	cfgA.MailboxCapacity = 17
	cfgA.Backpressure = BackpressureDropOldest
	cfgA.PublishEvery = 33
	if _, err := e.AddStream("a", cfgA); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddStream("b", validStreamConfig()); err != nil {
		t.Fatal(err)
	}
	fillAndStart(t, e, "a", 5)
	// Stream b stays offline — restore must handle both phases.
	if err := e.PushBatch(bg, "b", []Event{{Coord: []int{1, 1}, Value: 2, Time: 0}}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Checkpoint(bg, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := RestoreEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Close()

	if streams := got.Streams(); len(streams) != 2 || streams[0] != "a" || streams[1] != "b" {
		t.Fatalf("restored streams = %v", streams)
	}
	want, _ := e.Snapshot("a")
	snap, err := got.Snapshot("a")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Events != want.Events || snap.NNZ != want.NNZ || !snap.Started ||
		snap.Now != want.Now || snap.Fitness != want.Fitness {
		t.Fatalf("restored a = %+v, want %+v", snap, want)
	}
	if snap.QueueCap != 17 || snap.Backpressure != "drop-oldest" {
		t.Fatalf("serving config not restored: cap=%d bp=%q", snap.QueueCap, snap.Backpressure)
	}
	if snapB, _ := got.Snapshot("b"); snapB.Started || snapB.NNZ != 1 {
		t.Fatalf("restored b = %+v", snapB)
	}
	// The restored engine is live: it accepts and applies new work.
	if err := got.Push(bg, "a", []int{0, 0}, 1, want.Now); err != nil {
		t.Fatal(err)
	}
	if err := got.Flush(bg, "a"); err != nil {
		t.Fatal(err)
	}
	if snap, _ = got.Snapshot("a"); snap.Events != want.Events+1 {
		t.Fatalf("restored engine did not apply new event: %d", snap.Events)
	}

	if _, err := RestoreEngine(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// A checkpoint truncated mid-stream fails cleanly (and shuts down the
	// shards restored before the corruption).
	var buf2 bytes.Buffer
	if err := e.Checkpoint(bg, &buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreEngine(bytes.NewReader(buf2.Bytes()[:buf2.Len()-50])); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

// TestEngineConcurrentShardsAndReaders is the engine-level race test: all
// shards ingest batches in parallel while reader goroutines hammer the
// wait-free snapshot and predict paths across every stream — half through
// name-keyed calls, half through pinned Stream handles.
func TestEngineConcurrentShardsAndReaders(t *testing.T) {
	const (
		shards  = 4
		batches = 60
		batchSz = 16
	)
	e := NewEngine()
	defer e.Close()
	names := make([]string, shards)
	handles := make([]*Stream, shards)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		cfg := validStreamConfig()
		cfg.PublishEvery = 8 // publish often so readers see fresh models
		st, err := e.AddStream(names[i], cfg)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = st
		fillAndStart(t, e, names[i], int64(100+i))
	}
	var baseline uint64
	for _, n := range names {
		snap, _ := e.Snapshot(n)
		baseline += snap.Ingested
	}

	var readers, producers sync.WaitGroup
	stop := make(chan struct{})
	// Readers: snapshots, predictions, and stream listings on every shard.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i, n := range names {
					var snap Snapshot
					if r%2 == 0 {
						snap = handles[i].Snapshot()
						_, _ = handles[i].Predict([]int{r % 5, r % 4}, 0)
					} else {
						var err error
						snap, err = e.Snapshot(n)
						if err != nil {
							t.Error(err)
							return
						}
						_, _ = e.Predict(n, []int{r % 5, r % 4}, 0)
					}
					if snap.Started && snap.Factors == nil {
						t.Error("started snapshot without factors")
						return
					}
				}
				_ = e.Streams()
			}
		}(r)
	}
	// One producer per shard: per-stream order stays sequential while the
	// shards ingest fully in parallel. Even shards push through the handle,
	// odd shards through the name-keyed path — same pipeline underneath.
	var pushed atomic.Uint64
	for i, n := range names {
		producers.Add(1)
		go func(i int, name string, seed int64) {
			defer producers.Done()
			rng := rand.New(rand.NewSource(seed))
			tm := int64(1000)
			for b := 0; b < batches; b++ {
				batch := make([]Event, batchSz)
				for j := range batch {
					tm += int64(rng.Intn(2))
					batch[j] = Event{Coord: []int{rng.Intn(5), rng.Intn(4)}, Value: 1, Time: tm}
				}
				var err error
				if i%2 == 0 {
					err = handles[i].PushBatch(bg, batch)
				} else {
					err = e.PushBatch(bg, name, batch)
				}
				if err != nil {
					t.Error(err)
					return
				}
				pushed.Add(batchSz)
			}
		}(i, n, int64(200+i))
	}
	producers.Wait()
	close(stop)
	readers.Wait()

	if err := e.FlushAll(bg); err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, n := range names {
		snap, _ := e.Snapshot(n)
		if snap.IngestErrors != 0 {
			t.Fatalf("%s: %d ingest errors, last %q", n, snap.IngestErrors, snap.LastError)
		}
		total += snap.Ingested
	}
	if want := pushed.Load(); total-baseline != want {
		t.Fatalf("ingested %d, pushed %d", total-baseline, want)
	}
}

// BenchmarkEngineShards measures aggregate ingestion throughput as the
// number of independent streams grows. Each shard has its own single
// writer, so events/sec should scale near-linearly with shard count until
// the cores run out. Run with -cpu to pin GOMAXPROCS.
func BenchmarkEngineShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := NewEngine()
			defer e.Close()
			names := make([]string, shards)
			for i := range names {
				names[i] = fmt.Sprintf("s%d", i)
				cfg := validStreamConfig()
				cfg.MailboxCapacity = 1024
				cfg.PublishEvery = 4096
				if _, err := e.AddStream(names[i], cfg); err != nil {
					b.Fatal(err)
				}
				fillAndStart(b, e, names[i], int64(i))
			}
			const batchSz = 256
			per := (b.N + shards - 1) / shards
			// Pre-build each shard's batches outside the timed region.
			all := make([][][]Event, shards)
			for i := range all {
				rng := rand.New(rand.NewSource(int64(1000 + i)))
				tm := int64(1000)
				for n := 0; n < per; n += batchSz {
					sz := batchSz
					if per-n < sz {
						sz = per - n
					}
					batch := make([]Event, sz)
					for j := range batch {
						if rng.Intn(64) == 0 {
							tm++
						}
						batch[j] = Event{Coord: []int{rng.Intn(5), rng.Intn(4)}, Value: 1, Time: tm}
					}
					all[i] = append(all[i], batch)
				}
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for i := range names {
				wg.Add(1)
				go func(name string, batches [][]Event) {
					defer wg.Done()
					for _, batch := range batches {
						if err := e.PushBatch(bg, name, batch); err != nil {
							b.Error(err)
							return
						}
					}
				}(names[i], all[i])
			}
			wg.Wait()
			if err := e.FlushAll(bg); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			var total uint64
			for _, n := range names {
				snap, _ := e.Snapshot(n)
				total += snap.Stats.Ingested
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// TestEngineRateLimit covers per-stream admission control: the token
// bucket admits up to its burst, refuses beyond it with a typed
// *RateLimitError carrying a retry hint, never queues a refused batch,
// and reports its decisions in the snapshot's Admission view.
func TestEngineRateLimit(t *testing.T) {
	e := NewEngine()
	defer e.Close()

	cfg := validStreamConfig()
	cfg.RateLimit = 1 // 1 event/sec…
	cfg.RateBurst = 3 // …with 3 admissible up front
	st, err := e.AddStream("lim", cfg)
	if err != nil {
		t.Fatal(err)
	}

	batch := func(n int) []Event {
		evs := make([]Event, n)
		for i := range evs {
			evs[i] = Event{Coord: []int{i % 5, i % 4}, Value: 1, Time: 0}
		}
		return evs
	}

	// The full bucket admits exactly the burst…
	if err := st.PushBatch(bg, batch(3)); err != nil {
		t.Fatalf("burst-sized batch refused: %v", err)
	}
	// …then refuses, atomically for the whole batch, with the typed error.
	err = st.PushBatch(bg, batch(2))
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-limit push = %v, want ErrRateLimited", err)
	}
	var rl *RateLimitError
	if !errors.As(err, &rl) {
		t.Fatalf("over-limit push = %T, want *RateLimitError", err)
	}
	if rl.Stream != "lim" || rl.RetryAfter <= 0 {
		t.Fatalf("RateLimitError = %+v", rl)
	}
	// At 1 token/sec a 2-event batch is at most 2s away.
	if rl.RetryAfter > 2*time.Second {
		t.Fatalf("RetryAfter = %v, want ≤ 2s", rl.RetryAfter)
	}

	if err := st.Flush(bg); err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.Admission == nil {
		t.Fatal("no Admission view on a rate-limited stream")
	}
	if snap.Admission.AcceptedEvents != 3 || snap.Admission.LimitedEvents != 2 || snap.Admission.LimitedBatches != 1 {
		t.Fatalf("admission counters: %+v", snap.Admission)
	}
	if snap.Admission.RateLimit != 1 || snap.Admission.Burst != 3 {
		t.Fatalf("admission config echo: %+v", snap.Admission)
	}
	// Refused events never reached the mailbox or the tracker: only the
	// admitted 3 were applied.
	if snap.Ingested != 3 {
		t.Fatalf("ingested = %d, want 3 (refused batch must not queue)", snap.Ingested)
	}

	// Engine.Metrics carries the same view.
	for _, sm := range e.Metrics().Streams {
		if sm.Name != "lim" {
			continue
		}
		if sm.Admission == nil || sm.Admission.LimitedBatches != 1 {
			t.Fatalf("Metrics admission view: %+v", sm.Admission)
		}
	}

	// An unlimited stream carries no admission state at all.
	plain, err := e.AddStream("plain", validStreamConfig())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Snapshot().Admission != nil {
		t.Fatal("unlimited stream reports an Admission view")
	}
}

// TestStreamConfigRateLimitValidation pins the config contract around the
// admission knobs.
func TestStreamConfigRateLimitValidation(t *testing.T) {
	base := validStreamConfig()

	neg := base
	neg.RateLimit = -1
	if _, err := New(neg.Config); err != nil {
		t.Fatal(err) // tracker config itself is fine
	}
	if err := neg.withDefaults().validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative RateLimit = %v, want ErrConfig", err)
	}

	orphanBurst := base
	orphanBurst.RateBurst = 10
	if err := orphanBurst.withDefaults().validate(); !errors.Is(err, ErrConfig) {
		t.Fatalf("RateBurst without RateLimit = %v, want ErrConfig", err)
	}

	// Default burst: ceil(rate), floored at 1.
	small := base
	small.RateLimit = 0.25
	if got := small.withDefaults().RateBurst; got != 1 {
		t.Fatalf("default burst for rate 0.25 = %g, want 1", got)
	}
	big := base
	big.RateLimit = 1500.5
	if got := big.withDefaults().RateBurst; got != 1501 {
		t.Fatalf("default burst for rate 1500.5 = %g, want 1501", got)
	}
}
