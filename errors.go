package slicenstitch

import (
	"errors"
	"fmt"
	"time"
)

// This file is the package's complete error taxonomy. Every error a
// Tracker, SafeTracker, Engine, or Stream returns either IS one of the
// sentinels below, WRAPS one (matchable with errors.Is), or is one of the
// structured types (matchable with errors.As) — so callers branch on
// values, never on error strings. The HTTP layer in cmd/snsserve maps the
// same taxonomy onto its uniform JSON error envelope.
var (
	// ErrStreamNotFound reports a stream name with no registered stream.
	ErrStreamNotFound = errors.New("slicenstitch: stream not found")

	// ErrStreamStopped reports an operation on a stream that was removed
	// (or whose engine shut down mid-operation) after the caller obtained
	// its handle. Reads of the last published snapshot keep working on a
	// stopped handle; ingestion and control operations return this.
	ErrStreamStopped = errors.New("slicenstitch: stream stopped")

	// ErrNotStarted reports a model read (Predict, Factors over HTTP)
	// before the warm start brought the stream online.
	ErrNotStarted = errors.New("slicenstitch: not started")

	// ErrAlreadyStarted reports a second Start on the same tracker or
	// stream.
	ErrAlreadyStarted = errors.New("slicenstitch: already started")

	// ErrBackpressure reports a full mailbox under BackpressureError.
	ErrBackpressure = errors.New("slicenstitch: stream mailbox full")

	// ErrStaleTimestamp reports an event or advance whose timestamp
	// precedes the stream's current time. Tuples must arrive in
	// chronological order.
	ErrStaleTimestamp = errors.New("slicenstitch: timestamp precedes stream time")

	// ErrObservedUnavailable reports that a deadline-bounded Observed
	// read was shed because the stream's mailbox is full: bounded reads
	// never queue behind a backlog or take the slots producers need.
	// Treat the observation as unavailable rather than stale and retry
	// later.
	ErrObservedUnavailable = errors.New("slicenstitch: observation unavailable (stream backlogged)")

	// ErrEngineClosed reports use of an engine after Close/Shutdown.
	ErrEngineClosed = errors.New("slicenstitch: engine closed")

	// ErrDurability reports that a durable stream's write-ahead log or
	// checkpointing failed: the stream keeps serving from memory, but
	// state changes since the failure may not survive a crash. Flush —
	// the explicit durability barrier — returns an error wrapping this
	// sentinel instead of claiming success; the latched condition also
	// surfaces in Snapshot.DurabilityError.
	ErrDurability = errors.New("slicenstitch: durability failure")

	// ErrConfig reports an invalid configuration: a Config, StreamConfig,
	// or DurabilityOptions field out of range, an unknown algorithm or
	// policy name, or a malformed argument (empty stream name). The
	// wrapped message names the offending field.
	ErrConfig = errors.New("slicenstitch: invalid config")

	// ErrStreamExists reports AddStream with a name that is already
	// registered (or whose durability directory already exists).
	ErrStreamExists = errors.New("slicenstitch: stream already exists")

	// ErrCorruptCheckpoint reports durable state on disk — a checkpoint,
	// an engine manifest, or a config sidecar frame — that fails
	// validation on restore: bad checksum, truncated frame, unsupported
	// version, or a model shape that contradicts its config.
	ErrCorruptCheckpoint = errors.New("slicenstitch: corrupt checkpoint")

	// ErrReadOnly reports a write — ingest, Start/AdvanceTo, stream
	// add/remove — on a follower engine. Replicas apply the leader's WAL
	// and serve reads; the single writer for every stream is the leader.
	ErrReadOnly = errors.New("slicenstitch: engine is a read-only follower")

	// ErrWALGap reports a WAL position that is no longer (or not yet)
	// available: a TailWAL read below the oldest record the leader still
	// retains — the follower fell behind a post-checkpoint truncation and
	// must re-bootstrap — or a replication apply whose chunk does not
	// abut the local WAL's next LSN.
	ErrWALGap = errors.New("slicenstitch: wal position not available")

	// ErrCorruptWAL reports a write-ahead-log record that fails to decode
	// during recovery: a malformed frame the original writer could never
	// have produced. Torn tails are not corruption — recovery truncates
	// them silently; this sentinel means bytes inside the valid prefix
	// are wrong.
	ErrCorruptWAL = errors.New("slicenstitch: corrupt wal record")

	// ErrRateLimited reports a batch refused by a stream's admission
	// token bucket (StreamConfig.RateLimit): offered load exceeds the
	// configured rate and the events were rejected before reaching the
	// mailbox. Unlike ErrBackpressure — the mailbox itself is full — a
	// rate-limited push is refused instantly and carries a retry hint:
	// errors.As to *RateLimitError for the wait.
	ErrRateLimited = errors.New("slicenstitch: rate limited")
)

// RateLimitError reports a PushBatch refused by the stream's admission
// token bucket, carrying how long the caller should wait before the
// bucket could admit the batch. It wraps ErrRateLimited (errors.Is) and
// is matchable with errors.As; the HTTP layer maps it to 429 with a
// Retry-After header.
type RateLimitError struct {
	// Stream is the refusing stream's name.
	Stream string
	// RetryAfter is the minimum wait before a retry could be admitted.
	RetryAfter time.Duration
}

func (e *RateLimitError) Error() string {
	return fmt.Sprintf("slicenstitch: rate limited: stream %q (retry after %v)", e.Stream, e.RetryAfter)
}

// Unwrap exposes ErrRateLimited to errors.Is.
func (e *RateLimitError) Unwrap() error { return ErrRateLimited }

// CoordError reports an invalid coordinate or time-mode index: wrong
// arity, an out-of-range categorical index, or an out-of-range time index.
// It is returned (possibly wrapped in a *RejectError) by every validation
// path — Push, PushBatch, Predict, Observed — and matchable with
// errors.As.
type CoordError struct {
	// Mode is the offending categorical mode, or -1 for arity and
	// time-index errors (see Time).
	Mode int
	// Time is true when the time-mode index was out of range.
	Time bool
	// Got is the offending index — or, for arity errors, the number of
	// indices supplied.
	Got int
	// Limit is the exclusive valid bound: the mode size, the window
	// length W for time indices, or the required arity.
	Limit int
}

func (e *CoordError) Error() string {
	switch {
	case e.Time:
		return fmt.Sprintf("slicenstitch: timeIdx %d out of range [0,%d)", e.Got, e.Limit)
	case e.Mode < 0:
		return fmt.Sprintf("slicenstitch: coord has %d indices, want %d", e.Got, e.Limit)
	default:
		return fmt.Sprintf("slicenstitch: coord[%d] = %d out of range [0,%d)", e.Mode, e.Got, e.Limit)
	}
}

// RejectError reports one rejected event of a batch, carrying the event's
// position so callers can retry or discard exactly the failed entries.
// Tracker.PushBatch joins all rejections of a batch with errors.Join, so
// errors.As finds the first and a type switch over
// err.(interface{ Unwrap() []error }) walks them all.
type RejectError struct {
	// Index is the event's position in the batch passed to PushBatch.
	Index int
	// Err is the cause: a *CoordError or an ErrStaleTimestamp wrap.
	Err error
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("slicenstitch: event %d rejected: %v", e.Index, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RejectError) Unwrap() error { return e.Err }

// staleErr builds the standard chronological-order violation, wrapping
// ErrStaleTimestamp with the concrete times.
func staleErr(tm, now int64) error {
	return fmt.Errorf("%w: %d < %d", ErrStaleTimestamp, tm, now)
}

// rejects collects the per-event failures of one batch. A nil slice joins
// to a nil error, so the accept path pays nothing.
type rejects []error

func (r rejects) join() error { return errors.Join(r...) }

// lastReject returns the most recent *RejectError inside a joined batch
// error (or err itself when it is not a join) — the engine's snapshot
// reports it as LastError so operators see the latest failure, not an
// ever-growing join string.
func lastReject(err error) error {
	if err == nil {
		return nil
	}
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		if errs := u.Unwrap(); len(errs) > 0 {
			return errs[len(errs)-1]
		}
	}
	return err
}

// countRejects returns how many individual rejections a PushBatch error
// carries (1 for a bare error, 0 for nil).
func countRejects(err error) int {
	if err == nil {
		return 0
	}
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return len(u.Unwrap())
	}
	return 1
}
